"""The champion–challenger rollout: gates, canary, rollback, coherence.

Unit tests of :mod:`repro.service.rollout` plus an end-to-end serve run
with an injected bad canary, asserting the satellite contracts: the
health gate rolls the bad model back, the incident lands on the trace
and in the per-model-version :class:`ServiceReport` tallies, and the
verdict cache never serves anything the bad model touched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.obs import TracingObserver, observation
from repro.service import (
    CacheEntry,
    LoadProfile,
    ModelRegistry,
    RolloutConfig,
    RolloutController,
    VerdictCache,
    generate_requests,
    make_service,
)


class FixedModel:
    """Predicts a constant label; accuracy is the class prevalence."""

    def __init__(self, label: int) -> None:
        self.label = label

    def predict(self, x):
        return np.full(len(x), self.label, dtype=int)


def make_controller(config=None, champion=FixedModel(0)):
    registry = ModelRegistry()
    registry.register(champion, note="champion")
    return RolloutController(registry, 1, config)


# -- registry ------------------------------------------------------------


def test_registry_is_append_only_and_versions_start_at_one():
    registry = ModelRegistry()
    first = registry.register("model-a")
    second = registry.register("model-b", trained_day=30, note="retrain")
    assert (first.version, second.version) == (1, 2)
    assert registry.versions() == [1, 2]
    assert 2 in registry and 3 not in registry
    assert registry.get(2).note == "retrain"
    with pytest.raises(KeyError):
        registry.get(0)  # 0 is reserved for the static model


def test_config_validation():
    with pytest.raises(ValueError):
        RolloutConfig(canary_fraction=0.0)
    with pytest.raises(ValueError):
        RolloutConfig(canary_requests=0)
    with pytest.raises(ValueError):
        RolloutConfig(min_canary_sample=0)


# -- promotion gate ------------------------------------------------------


def test_promotion_gate_compares_holdout_accuracy():
    controller = make_controller()
    better = controller.registry.register(FixedModel(1))
    x = np.zeros((10, 2))
    y = np.array([1] * 7 + [0] * 3)  # champion(0): 0.3, challenger(1): 0.7
    assert controller.evaluate_challenger(better.version, x, y)
    y_flipped = 1 - y
    assert not controller.evaluate_challenger(better.version, x, y_flipped)


def test_only_one_canary_at_a_time():
    controller = make_controller()
    challenger = controller.registry.register(FixedModel(1))
    controller.start_canary(challenger.version, t=1.0)
    with pytest.raises(RuntimeError):
        controller.start_canary(challenger.version, t=2.0)
    with pytest.raises(KeyError):
        make_controller().start_canary(99)


def test_record_canary_requires_a_canary():
    with pytest.raises(RuntimeError):
        make_controller().record_canary(True, True, t=0.0)


# -- traffic assignment --------------------------------------------------


def test_assignment_is_deterministic_and_split():
    config = RolloutConfig(canary_fraction=0.3)
    app_ids = [f"app-{i:04d}" for i in range(400)]

    def assignments():
        controller = make_controller(config)
        challenger = controller.registry.register(FixedModel(1))
        controller.start_canary(challenger.version)
        return [controller.assign(app_id) for app_id in app_ids]

    first, second = assignments(), assignments()
    assert first == second  # bit-identical across controllers
    canary_share = sum(1 for v in first if v == 2) / len(first)
    assert 0.2 < canary_share < 0.4
    # Without a canary everything is the champion's.
    steady = make_controller(config)
    assert {steady.assign(app_id) for app_id in app_ids} == {1}


# -- the health gate -----------------------------------------------------


def promote_path(controller):
    outcome = "canary"
    while outcome == "canary":
        outcome = controller.record_canary(False, False, t=1.0)
    return outcome


def test_agreeing_canary_is_promoted():
    controller = make_controller(RolloutConfig(canary_requests=12))
    challenger = controller.registry.register(FixedModel(0))
    controller.start_canary(challenger.version, t=0.0)
    assert promote_path(controller) == "promoted"
    assert controller.champion.version == 2
    assert controller.canary is None
    assert controller.promotions == [(1.0, 2)]
    assert controller.consume_flush() is True
    assert controller.consume_flush() is False  # exactly once


def test_disagreeing_canary_is_rolled_back_with_incident():
    config = RolloutConfig(canary_requests=50, min_canary_sample=5)
    controller = make_controller(config)
    challenger = controller.registry.register(FixedModel(1))
    controller.start_canary(challenger.version, t=0.0)
    outcome = "canary"
    scored = 0
    while outcome == "canary":
        outcome = controller.record_canary(True, False, t=3.0)
        scored += 1
    assert outcome == "rolled_back"
    assert scored == config.min_canary_sample  # gate armed exactly there
    assert controller.champion.version == 1  # champion restored
    (incident,) = controller.incidents
    assert incident.canary_version == 2
    assert incident.restored_version == 1
    assert "disagreement" in incident.reason
    assert controller.consume_flush() is True


def test_trigger_happy_canary_trips_the_positive_excess_gate():
    """Agreement alone is not health: a canary whose positives vastly
    exceed the champion's shadow rate is pathological."""
    config = RolloutConfig(
        canary_requests=50,
        min_canary_sample=5,
        max_disagreement=1.1,  # disarm the disagreement gate
        max_positive_excess=0.5,
    )
    controller = make_controller(config)
    challenger = controller.registry.register(FixedModel(1))
    controller.start_canary(challenger.version, t=0.0)
    outcome = "canary"
    while outcome == "canary":
        outcome = controller.record_canary(True, False, t=4.0)
    assert outcome == "rolled_back"
    (incident,) = controller.incidents
    assert "positive excess" in incident.reason


def test_early_disagreement_does_not_kill_a_healthy_canary():
    config = RolloutConfig(canary_requests=20, min_canary_sample=10)
    controller = make_controller(config)
    challenger = controller.registry.register(FixedModel(0))
    controller.start_canary(challenger.version, t=0.0)
    # One early disagreement, then agreement: the gate must wait for
    # min_canary_sample and by then the rate has diluted below 0.25.
    assert controller.record_canary(True, False, t=0.0) == "canary"
    outcome = "canary"
    while outcome == "canary":
        outcome = controller.record_canary(False, False, t=1.0)
    assert outcome == "promoted"


def test_rollout_counters_reach_the_metrics_registry():
    observer = TracingObserver()
    with observation(observer):
        test_disagreeing_canary_is_rolled_back_with_incident()
    assert observer.metrics.counter_value("rollout_rollbacks_total") == 1.0


# -- cache coherence -----------------------------------------------------


def entry(app_id, version, negative=False):
    return CacheEntry(
        app_id=app_id,
        verdict=True,
        risk_score=0.9,
        confidence="high",
        rung="full",
        negative=negative,
        model_version=version,
    )


def test_lookup_evicts_entries_from_retired_models():
    cache = VerdictCache()
    cache.store(entry("a", version=1), now_s=0.0)
    state, hit = cache.lookup("a", now_s=1.0, model_version=1)
    assert state == "fresh" and hit is not None
    state, hit = cache.lookup("a", now_s=1.0, model_version=2)
    assert state == "miss" and hit is None
    assert cache.version_evictions == 1
    assert "a" not in cache
    # Version-blind lookup (no rollout attached) never evicts.
    cache.store(entry("b", version=3), now_s=0.0)
    state, hit = cache.lookup("b", now_s=1.0)
    assert state == "fresh" and hit is not None
    assert cache.version_evictions == 1


def test_retain_version_flushes_negative_entries_too():
    cache = VerdictCache()
    cache.store(entry("keep", version=2), now_s=0.0)
    cache.store(entry("old", version=1), now_s=0.0)
    cache.store(entry("removed", version=1, negative=True), now_s=0.0)
    flushed = cache.retain_version(2)
    assert flushed == 2
    assert "keep" in cache and "old" not in cache and "removed" not in cache
    assert cache.version_evictions == 2
    assert cache.snapshot()["version_evictions"] == 2


# -- end to end: a bad canary against the real service -------------------

SCALE = dict(scale=0.01, master_seed=424242)


def serve_with_canary(kind: str, observer=None):
    from repro.cli import _build_canary_rollout

    with observation(observer):
        result = FrappePipeline(ScaleConfig(**SCALE)).run(
            sweep_unlabelled=False
        )
        service = make_service(result, ServiceConfig(max_queue_depth=12))
        service.rollout = _build_canary_rollout(service, kind)
        profile = LoadProfile(
            n_requests=60, rate_rps=0.2, pool_size=20, seed=7
        )
        requests = generate_requests(sorted(result.bundle.d_sample), profile)
        report = service.serve(requests)
    return service, report


def test_bad_canary_is_rolled_back_end_to_end():
    observer = TracingObserver()
    service, report = serve_with_canary("bad", observer)
    controller = service.rollout

    # The health gate fired and the champion was restored.
    (incident,) = controller.incidents
    assert incident.canary_version == 2
    assert controller.champion.version == 1
    assert report.rollout["rollbacks"] == 1
    assert report.rollout["champion"] == 1

    # The rollback is visible on the trace and in the counters.
    assert observer.metrics.counter_value("rollout_rollbacks_total") == 1.0

    # Per-version tallies: the bad model served some verdicts before
    # the gate tripped, the champion served the rest, and the summary
    # renders both.
    versions = report.version_outcome_counts()
    assert incident.canary_version in versions
    assert versions[incident.canary_version]["served"] >= 1
    assert versions[1]["served"] >= 1
    assert "model v1:" in report.summary()
    assert "rollout:" in report.summary()

    # Cache coherence: nothing the bad model scored survives, so no
    # response after the rollback carries its version.
    rolled_back_at = incident.t
    assert all(
        response.model_version != incident.canary_version
        for response in report.responses
        if response.started_s > rolled_back_at
    )
    assert service.cache.version_evictions >= 0
    for app_id in list(getattr(service.cache, "_entries", {})):
        assert service.cache._entries[app_id].model_version == 1


def test_good_canary_is_promoted_end_to_end():
    service, report = serve_with_canary("good")
    controller = service.rollout
    assert not controller.incidents
    assert controller.promotions
    assert controller.champion.version == 2
    assert report.rollout["promotions"] == 1
    versions = report.version_rung_counts()
    assert set(versions) <= {1, 2}
