"""Tests for the URL model, WOT, blacklist, redirector, and hosting."""

import pytest
from hypothesis import given, strategies as st

from repro.urlinfra.blacklist import UrlBlacklist
from repro.urlinfra.hosting import HostingRegistry
from repro.urlinfra.redirector import IndirectionSite, RedirectorNetwork
from repro.urlinfra.url import Url, domain_of, is_facebook_url, registered_domain
from repro.urlinfra.wot import WOT_UNKNOWN, WotService

_LABEL = st.text(alphabet="abcdefghij", min_size=1, max_size=8)


class TestUrl:
    def test_parse_roundtrip(self):
        raw = "https://www.facebook.com/apps/application.php?id=42"
        url = Url.parse(raw)
        assert url.host == "www.facebook.com"
        assert url.path == "/apps/application.php"
        assert url.params == {"id": "42"}
        assert str(url) == raw

    def test_relative_url_rejected(self):
        with pytest.raises(ValueError):
            Url.parse("/no/scheme")

    def test_with_params_merges(self):
        url = Url.parse("http://x.com/p?a=1").with_params(b="2")
        assert url.params == {"a": "1", "b": "2"}

    @given(sub=_LABEL, dom=_LABEL)
    def test_registered_domain_collapses_subdomains(self, sub, dom):
        assert registered_domain(f"{sub}.{dom}.com") == f"{dom}.com"

    def test_domain_of_invalid(self):
        assert domain_of("not a url") == ""

    def test_is_facebook_url(self):
        assert is_facebook_url("https://apps.facebook.com/farmville")
        assert is_facebook_url("http://www.facebook.com/p")
        assert not is_facebook_url("http://bit.ly/abc")
        assert not is_facebook_url("http://notfacebook.com.evil.com/x")


class TestWot:
    def test_unknown_domain(self, rng):
        assert WotService(rng).score_domain("fresh-spam.com") == WOT_UNKNOWN

    def test_facebook_is_trusted(self, rng):
        wot = WotService(rng)
        assert wot.score_url("https://apps.facebook.com/x") > 90

    def test_set_and_forget(self, rng):
        wot = WotService(rng)
        wot.set_score("example.com", 50.0)
        assert wot.score_domain("www.example.com") == 50.0
        wot.forget("example.com")
        assert wot.score_domain("example.com") == WOT_UNKNOWN

    def test_score_range_enforced(self, rng):
        with pytest.raises(ValueError):
            WotService(rng).set_score("x.com", 101.0)

    def test_seed_reputable_range(self, rng):
        wot = WotService(rng)
        for index in range(20):
            wot.seed_reputable(f"company{index}.com")
            assert 70.0 <= wot.score_domain(f"company{index}.com") <= 98.0

    def test_seed_spammy_distribution(self, rng):
        wot = WotService(rng)
        scores = []
        for index in range(300):
            domain = f"spam{index}.com"
            wot.seed_spammy(domain, coverage_probability=0.2)
            scores.append(wot.score_domain(domain))
        unknown = sum(1 for s in scores if s == WOT_UNKNOWN) / len(scores)
        assert 0.7 < unknown < 0.9  # ~80% unknown (Fig 8)
        assert all(s <= 5.0 for s in scores if s != WOT_UNKNOWN)


class TestBlacklist:
    def test_exact_url_match(self):
        blacklist = UrlBlacklist()
        blacklist.add_url("http://evil.com/a")
        assert blacklist.contains("http://evil.com/a")
        assert not blacklist.contains("http://evil.com/b")

    def test_domain_match(self):
        blacklist = UrlBlacklist()
        blacklist.add_domain("evil.com")
        assert blacklist.contains("http://www.evil.com/anything")
        assert not blacklist.contains("http://good.com/x")

    def test_time_delay(self):
        blacklist = UrlBlacklist()
        blacklist.add_url("http://evil.com/a", day=100)
        assert not blacklist.contains("http://evil.com/a", day=99)
        assert blacklist.contains("http://evil.com/a", day=100)
        assert blacklist.contains("http://evil.com/a", day=None)

    def test_earliest_listing_wins(self):
        blacklist = UrlBlacklist()
        blacklist.add_url("http://evil.com/a", day=100)
        blacklist.add_url("http://evil.com/a", day=50)
        assert blacklist.contains("http://evil.com/a", day=60)

    def test_dunder_contains(self):
        blacklist = UrlBlacklist()
        blacklist.add_url("http://evil.com/a", day=10)
        assert "http://evil.com/a" in blacklist
        assert len(blacklist) == 1


class TestRedirector:
    def _site(self, targets):
        return IndirectionSite(url="http://go.spam.com/r/1", target_app_ids=targets)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            IndirectionSite(url="http://x.com", target_app_ids=[])

    def test_probe_discovers_all_targets(self, rng):
        network = RedirectorNetwork(rng)
        site = self._site(["a", "b", "c"])
        network.register(site)
        assert network.probe(site.url, 200) == {"a", "b", "c"}

    def test_follow_returns_a_target(self, rng):
        network = RedirectorNetwork(rng)
        site = self._site(["a", "b"])
        network.register(site)
        assert network.follow(site.url) in {"a", "b"}

    def test_double_registration_rejected(self, rng):
        network = RedirectorNetwork(rng)
        site = self._site(["a"])
        network.register(site)
        with pytest.raises(ValueError):
            network.register(site)

    def test_is_indirection(self, rng):
        network = RedirectorNetwork(rng)
        network.register(self._site(["a"]))
        assert network.is_indirection("http://go.spam.com/r/1")
        assert not network.is_indirection("http://elsewhere.com")


class TestHosting:
    def test_assign_and_lookup(self):
        hosting = HostingRegistry()
        hosting.assign("spam.com", "amazonaws.com")
        assert hosting.provider_of_domain("www.spam.com") == "amazonaws.com"
        assert hosting.provider_of_url("http://spam.com/x") == "amazonaws.com"

    def test_unknown_provider(self):
        assert HostingRegistry().provider_of_domain("x.com") == "unknown"

    def test_histogram(self):
        hosting = HostingRegistry()
        hosting.assign("a.com", "aws")
        hosting.assign("b.com", "aws")
        hosting.assign("c.com", "other")
        histogram = hosting.provider_histogram(
            ["http://a.com/1", "http://b.com/2", "http://c.com/3", "http://a.com/4"]
        )
        assert histogram["aws"] == 3
        assert histogram["other"] == 1
