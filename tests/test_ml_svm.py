"""Tests for the from-scratch SMO SVM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.kernels import linear_kernel, polynomial_kernel, rbf_kernel
from repro.ml.svm import SVC


def _blobs(rng, n=120, separation=3.0, d=4):
    x = np.vstack(
        [rng.normal(0, 1, (n // 2, d)), rng.normal(separation, 1, (n // 2, d))]
    )
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


class TestKernels:
    def test_rbf_diagonal_is_one(self, rng):
        x = rng.normal(size=(10, 3))
        gram = rbf_kernel(x, x, gamma=0.5)
        assert np.allclose(np.diag(gram), 1.0)

    def test_rbf_symmetry_and_range(self, rng):
        x = rng.normal(size=(12, 3))
        gram = rbf_kernel(x, x, gamma=1.0)
        assert np.allclose(gram, gram.T)
        assert np.all(gram > 0) and np.all(gram <= 1.0 + 1e-12)

    def test_rbf_gram_is_psd(self, rng):
        x = rng.normal(size=(20, 4))
        gram = rbf_kernel(x, x, gamma=0.7)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8

    def test_linear_matches_dot(self, rng):
        x = rng.normal(size=(5, 3))
        y = rng.normal(size=(4, 3))
        assert np.allclose(linear_kernel(x, y), x @ y.T)

    def test_polynomial_degree_one_is_affine_linear(self, rng):
        x = rng.normal(size=(5, 3))
        assert np.allclose(
            polynomial_kernel(x, x, gamma=1.0, coef0=0.0, degree=1),
            linear_kernel(x, x),
        )


class TestSvc:
    def test_separable_blobs_perfect(self, rng):
        x, y = _blobs(rng)
        model = SVC().fit(x, y)
        assert (model.predict(x) == y).mean() == 1.0

    def test_linear_kernel_on_blobs(self, rng):
        x, y = _blobs(rng)
        model = SVC(kernel="linear").fit(x, y)
        assert (model.predict(x) == y).mean() >= 0.99

    def test_poly_kernel_on_blobs(self, rng):
        x, y = _blobs(rng, separation=4.0)
        model = SVC(kernel="poly", coef0=1.0).fit(x, y)
        assert (model.predict(x) == y).mean() >= 0.95

    def test_xor_needs_nonlinearity(self, rng):
        x = rng.uniform(-1, 1, (300, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(int)
        rbf = SVC(c=5.0, gamma=2.0).fit(x, y)
        linear = SVC(kernel="linear", c=5.0).fit(x, y)
        assert (rbf.predict(x) == y).mean() >= 0.95
        assert (linear.predict(x) == y).mean() <= 0.7

    def test_decision_function_sign_matches_predictions(self, rng):
        x, y = _blobs(rng)
        model = SVC().fit(x, y)
        decisions = model.decision_function(x)
        assert np.array_equal((decisions >= 0).astype(int), model.predict(x))

    def test_single_class_training(self, rng):
        x = rng.normal(size=(10, 2))
        model = SVC().fit(x, np.ones(10, dtype=int))
        assert np.all(model.predict(rng.normal(size=(5, 2))) == 1)
        model0 = SVC().fit(x, np.zeros(10, dtype=int))
        assert np.all(model0.predict(x) == 0)

    def test_support_vectors_are_a_subset(self, rng):
        x, y = _blobs(rng)
        model = SVC().fit(x, y)
        assert 0 < model.n_support_ <= len(x)

    def test_label_validation(self, rng):
        x = rng.normal(size=(4, 2))
        with pytest.raises(ValueError):
            SVC().fit(x, np.array([0, 1, 2, 1]))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            SVC().fit(rng.normal(size=(4,)), np.array([0, 1, 0, 1]))
        with pytest.raises(ValueError):
            SVC().fit(rng.normal(size=(4, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            SVC().fit(np.zeros((0, 2)), np.zeros(0))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SVC(c=0.0)
        with pytest.raises(ValueError):
            SVC(kernel="sigmoid")

    def test_unfitted_predict_raises(self, rng):
        with pytest.raises(RuntimeError):
            SVC().predict(rng.normal(size=(3, 2)))

    def test_gamma_specs(self, rng):
        x, y = _blobs(rng)
        for gamma in ("auto", "scale", 0.5):
            model = SVC(gamma=gamma).fit(x, y)
            assert (model.predict(x) == y).mean() >= 0.99
        with pytest.raises(ValueError):
            SVC(gamma="bogus").fit(x, y)

    def test_deterministic_given_same_data(self, rng):
        x, y = _blobs(rng)
        a = SVC().fit(x, y).decision_function(x)
        b = SVC().fit(x, y).decision_function(x)
        assert np.allclose(a, b)

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 1000))
    def test_margin_property_on_random_separable_data(self, seed):
        """Training accuracy on well-separated data is always perfect."""
        local = np.random.default_rng(seed)
        x, y = _blobs(local, n=60, separation=6.0, d=3)
        model = SVC(c=10.0).fit(x, y)
        assert (model.predict(x) == y).mean() == 1.0

    def test_duplicate_points_do_not_crash(self, rng):
        x = np.vstack([np.zeros((5, 2)), np.ones((5, 2))])
        y = np.array([0] * 5 + [1] * 5)
        model = SVC().fit(x, y)
        assert (model.predict(x) == y).all()


class TestSmoRowCache:
    """The examine-loop caches are identities, not approximations.

    ``row_cache=True`` maintains ``alphas * signs`` incrementally and
    memoises the fallback scan's RNG roll; both must leave the SMO
    trajectory — every alpha, the bias, the iteration count — bit-for-
    bit what the uncached reference path produces.
    """

    def _fit_both(self, x, y, c=1.0):
        from repro.ml.svm import _smo

        signs = np.where(y == 1, 1.0, -1.0)
        kernel_matrix = rbf_kernel(x, x, gamma=1.0 / x.shape[1])
        cached = _smo(kernel_matrix, signs, c, 1e-3, 200, row_cache=True)
        reference = _smo(kernel_matrix, signs, c, 1e-3, 200, row_cache=False)
        return cached, reference

    def test_identical_on_separable_data(self, rng):
        x, y = _blobs(rng, n=120, separation=3.0)
        (alphas, bias, iters), (ref_alphas, ref_bias, ref_iters) = (
            self._fit_both(x, y)
        )
        assert np.array_equal(alphas, ref_alphas)
        assert bias == ref_bias
        assert iters == ref_iters

    def test_identical_on_overlapping_data(self, rng):
        # heavy class overlap exercises the fallback scan (and thus the
        # memoised roll) far more than the separable case
        x, y = _blobs(rng, n=160, separation=0.4, d=6)
        (alphas, bias, iters), (ref_alphas, ref_bias, ref_iters) = (
            self._fit_both(x, y)
        )
        assert np.array_equal(alphas, ref_alphas)
        assert bias == ref_bias
        assert iters == ref_iters

    def test_decision_values_identical_through_svc(self, rng):
        x, y = _blobs(rng, n=100, separation=1.0)
        probe = rng.normal(0.5, 1.5, size=(30, x.shape[1]))
        values = SVC().fit(x, y).decision_function(probe)
        again = SVC().fit(x, y).decision_function(probe)
        assert np.array_equal(values, again)
