"""Warm-started SMO converges where a cold start does.

The dual problem is a convex QP: seeding the solver with a projected
previous dual vector changes the path, never the destination.  The
hypothesis property below drives random windows and class ratios
through warm and cold fits and demands matching decision functions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.online import SlidingWindowTrainer, WindowModel, carry_alphas
from repro.ml.svm import SVC, project_feasible_alphas

#: SMO stops at KKT-within-tol, not the exact optimum, so two solves
#: from different starts agree to solver tolerance, not machine eps.
DECISION_ATOL = 0.15


def make_window(rng, n, positive_fraction, n_features=4, separation=2.0):
    """A labelled 2-class window with the requested class ratio."""
    y = (rng.random(n) < positive_fraction).astype(int)
    y[0], y[1] = 0, 1  # both classes always present
    x = rng.normal(size=(n, n_features)) + separation * y[:, None]
    return x, y


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(12, 60),
    positive_fraction=st.floats(0.15, 0.85),
)
def test_warm_start_reaches_the_cold_start_decision_function(
    seed, n, positive_fraction
):
    rng = np.random.default_rng(seed)
    x, y = make_window(rng, n, positive_fraction)
    cold = WindowModel().fit(x, y)
    # An arbitrary (infeasible) seed: fit() must project it and still
    # land on the same optimum.
    seed_alphas = rng.uniform(-0.5, 2.5, size=n)
    warm = WindowModel().fit(x, y, init_alphas=seed_alphas)
    probe = np.vstack([x, rng.normal(size=(20, x.shape[1]))])
    np.testing.assert_allclose(
        warm.decision_function(probe),
        cold.decision_function(probe),
        atol=DECISION_ATOL,
    )
    assert warm.accuracy(x, y) == cold.accuracy(x, y)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(6, 40),
    c=st.floats(0.5, 4.0),
)
def test_projected_seed_is_always_smo_feasible(seed, n, c):
    """Box [0, C] and the equality constraint sum(alpha_i y_i) = 0."""
    rng = np.random.default_rng(seed)
    signs = np.where(rng.random(n) < 0.5, 1.0, -1.0)
    signs[0], signs[1] = 1.0, -1.0
    raw = rng.uniform(-2.0 * c, 3.0 * c, size=n)
    projected = project_feasible_alphas(raw, signs, c)
    assert np.all(projected >= 0.0) and np.all(projected <= c)
    assert abs(float(projected @ signs)) < 1e-9


def test_sliding_trainer_warm_start_matches_cold_fit():
    """The realistic path: epoch pushes, carried alphas, same model."""
    rng = np.random.default_rng(7)
    trainer = SlidingWindowTrainer(window_epochs=3)
    for _ in range(2):
        trainer.push(*make_window(rng, 30, 0.4))
    trainer.train()
    assert not trainer.last_warm_start  # nothing trained before
    trainer.push(*make_window(rng, 30, 0.4))
    warm = trainer.train()
    assert trainer.last_warm_start
    x, y = trainer.window()
    cold = WindowModel().fit(x, y)
    probe = rng.normal(size=(50, x.shape[1])) + 1.0
    np.testing.assert_allclose(
        warm.decision_function(probe),
        cold.decision_function(probe),
        atol=DECISION_ATOL,
    )


def test_sliding_trainer_window_semantics():
    trainer = SlidingWindowTrainer(window_epochs=2)
    with pytest.raises(RuntimeError):
        trainer.window()
    rng = np.random.default_rng(3)
    for size in (10, 12, 14):
        trainer.push(*make_window(rng, size, 0.5))
    assert trainer.window_size == 12 + 14  # oldest epoch aged out
    with pytest.raises(ValueError):
        trainer.push(np.zeros((3, 4)), np.zeros(2))
    with pytest.raises(ValueError):
        SlidingWindowTrainer(window_epochs=0)


def test_carry_alphas_maps_the_shared_tail():
    previous = np.arange(12, dtype=float)  # batches of 3, 4, 5
    seed = carry_alphas(previous, [3, 4, 5], [4, 5, 6], carried_batches=2)
    assert seed is not None and len(seed) == 15
    np.testing.assert_array_equal(seed[:9], previous[3:])
    np.testing.assert_array_equal(seed[9:], np.zeros(6))
    assert carry_alphas(None, [3], [3, 4], 1) is None
    assert carry_alphas(previous, [12], [4], carried_batches=0) is None
    # A carried tail longer than the new window cannot be mapped.
    assert carry_alphas(previous, [12], [4], carried_batches=1) is None


def test_svc_rejects_misaligned_seed():
    rng = np.random.default_rng(11)
    x, y = make_window(rng, 20, 0.5)
    with pytest.raises(ValueError):
        SVC().fit(x, y, init_alphas=np.zeros(7))
