"""Chaos tests: the verdict service under overload plus injected faults.

An open-loop workload at a multiple of the service's estimated capacity
*guarantees* the admission queue fills, so these tests can assert the
overload contract instead of hoping for it:

* every offered request gets exactly one typed response — served,
  overloaded, or deadline — and nothing escapes as an exception;
* the queue never grows past its bound;
* shedding follows the priority policy (bulk before interactive);
* the whole thing is a pure function of the seed.

Worlds are built privately (the shared session fixtures must not be
mutated, and serving advances the world's RNG streams).
"""

from __future__ import annotations

import pytest

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.service import (
    BULK,
    DEADLINE,
    INTERACTIVE,
    OVERLOADED,
    RUNGS,
    SERVED,
    LoadProfile,
    estimate_capacity_rps,
    generate_requests,
    make_service,
)

FAULT_RATE = 0.25
QUEUE_DEPTH = 8
N_REQUESTS = 150
OVERLOAD_FACTOR = 2.5


def build_result(fault_rate: float = FAULT_RATE):
    return FrappePipeline(
        ScaleConfig(scale=0.01, master_seed=424242, fault_rate=fault_rate)
    ).run(sweep_unlabelled=False)


def overload_workload(result, n_requests: int = N_REQUESTS):
    capacity = estimate_capacity_rps(result.world.schedule)
    profile = LoadProfile(
        n_requests=n_requests,
        rate_rps=capacity * OVERLOAD_FACTOR,
        interactive_fraction=0.7,
        pool_size=16,
        seed=2012,
    )
    return generate_requests(sorted(result.bundle.d_sample), profile)


def serve_overloaded(result, n_requests: int = N_REQUESTS):
    service = make_service(
        result, ServiceConfig(max_queue_depth=QUEUE_DEPTH)
    )
    return service.serve(overload_workload(result, n_requests))


@pytest.fixture(scope="module")
def faulty_result():
    return build_result()


@pytest.fixture(scope="module")
def overload_report(faulty_result):
    """One overloaded, fault-injected serve run, shared by assertions."""
    return serve_overloaded(faulty_result)


class TestOverloadContract:
    def test_every_request_has_a_typed_outcome(self, overload_report):
        report = overload_report
        assert len(report.responses) == N_REQUESTS
        for response in report.responses:
            assert response.outcome in (SERVED, OVERLOADED, DEADLINE)
            assert response.rung in RUNGS
            if response.outcome != SERVED:
                assert response.verdict is None
                assert response.reason  # the caller is told why

    def test_queue_depth_never_exceeds_the_bound(self, overload_report):
        assert 0 < overload_report.max_queue_depth <= QUEUE_DEPTH
        assert overload_report.queue_bound == QUEUE_DEPTH

    def test_overload_actually_sheds(self, overload_report):
        outcomes = overload_report.outcome_counts()
        assert outcomes[OVERLOADED] > 0  # open-loop at 2.5x must shed
        assert outcomes[SERVED] > 0  # but the service is not dead

    def test_shedding_prefers_bulk_over_interactive(self, overload_report):
        report = overload_report
        assert report.shed.get(BULK, 0) > 0
        assert report.shed_rate(BULK) > report.shed_rate(INTERACTIVE)

    def test_admission_accounting_balances(self, overload_report):
        report = overload_report
        offered = sum(report.offered.values())
        assert offered == N_REQUESTS
        shed = sum(report.shed.values())
        assert report.outcome_counts()[OVERLOADED] == shed

    def test_cache_absorbs_repeat_traffic(self, overload_report):
        # pool_size=16 over 150 requests forces repeats; hits happen.
        hits = (
            overload_report.cache_hits_fresh + overload_report.cache_hits_stale
        )
        assert hits > 0

    def test_faults_were_actually_injected(self, overload_report):
        assert sum(overload_report.transport["injected"].values()) > 0

    def test_latency_percentiles_are_ordered(self, overload_report):
        report = overload_report
        p50 = report.latency_percentile(50)
        p95 = report.latency_percentile(95)
        p99 = report.latency_percentile(99)
        assert 0.0 <= p50 <= p95 <= p99
        assert report.elapsed_s > 0.0
        assert report.throughput_rps() > 0.0

    def test_report_summary_renders(self, overload_report):
        text = overload_report.summary()
        assert "overloaded=" in text
        assert "stale=" in text


class TestDeterminism:
    def test_same_seed_same_responses(self):
        fingerprints = []
        for _ in range(2):
            report = serve_overloaded(build_result(), n_requests=60)
            fingerprints.append(
                [
                    (
                        r.app_id,
                        r.outcome,
                        r.rung,
                        r.verdict,
                        r.priority,
                        round(r.arrival_s, 9),
                        round(r.finished_s, 9),
                        r.attempts,
                        r.faults,
                    )
                    for r in report.responses
                ]
            )
        assert fingerprints[0] == fingerprints[1]


class TestFaultFreeServeLoop:
    def test_no_faults_no_overload_everything_served_full(self):
        result = build_result(fault_rate=0.0)
        service = make_service(result)
        capacity = estimate_capacity_rps(result.world.schedule)
        profile = LoadProfile(
            n_requests=20,
            rate_rps=capacity * 0.5,  # under capacity: nothing sheds
            interactive_fraction=1.0,
            pool_size=20,
            seed=7,
        )
        requests = generate_requests(sorted(result.bundle.d_sample), profile)
        report = service.serve(requests)
        outcomes = report.outcome_counts()
        assert outcomes[SERVED] == 20
        assert outcomes[OVERLOADED] == 0
        assert outcomes[DEADLINE] == 0
        cascade = service._cascade
        for response in report.responses:
            if response.record is None:
                continue  # cache hit on a repeated app
            expected = int(cascade.predict([response.record])[0])
            assert response.verdict == bool(expected)
