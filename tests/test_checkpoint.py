"""Unit tests for the crash-safe checkpoint layer.

Covers the pieces in isolation: atomic writes, the journal's append /
load round-trip, the corruption policy (torn final line silently
truncated, checksum-mismatched interior line quarantined and re-crawled),
snapshot compaction, the configuration fingerprint, and CrashPlan
mechanics.  The kill-anywhere resume invariant lives in
``test_checkpoint_crash.py``.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.config import ScaleConfig
from repro.crawler.checkpoint import (
    CRASH_POINTS,
    CrashPlan,
    CrawlJournal,
    SimulatedCrash,
    atomic_write,
    next_sidecar_path,
    record_from_jsonable,
    record_to_jsonable,
)
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper

from tests.conftest import TEST_SCALE, TEST_SEED

FAULT_RATE = 0.2


@pytest.fixture(scope="module")
def faulted_world():
    """A small world whose crawls go through the fault-injecting transport."""
    return run_simulation(
        ScaleConfig(scale=TEST_SCALE, master_seed=TEST_SEED, fault_rate=FAULT_RATE)
    )


@pytest.fixture(scope="module")
def sample(faulted_world):
    report = MyPageKeeper(
        UrlClassifier(faulted_world.services.blacklist), faulted_world.post_log
    ).scan()
    bundle = DatasetBuilder(faulted_world, report).build(crawl=False)
    return sorted(bundle.d_sample)


@pytest.fixture()
def pristine_world(faulted_world):
    """The module world with its installer RNG restored after each test.

    Crawling draws from the installer's client-ID-rotation stream, the
    one piece of world state a crawl mutates; restoring it keeps every
    test's crawl deterministic regardless of execution order.
    """
    state = faulted_world.installer.rng_state()
    yield faulted_world
    faulted_world.installer.restore_rng_state(state)


def _crawl(world, apps, journal=None, crash_plan=None):
    return make_crawler(world).crawl_many(
        apps, journal=journal, crash_plan=crash_plan
    )


def _canon(records) -> bytes:
    """Byte-comparable image of a record dict."""
    return json.dumps(
        {a: record_to_jsonable(r) for a, r in sorted(records.items())},
        sort_keys=True,
    ).encode()


# -- atomic_write -----------------------------------------------------------


def test_atomic_write_creates_and_replaces(tmp_path):
    target = tmp_path / "data.json"
    atomic_write(target, '{"v": 1}')
    assert target.read_text() == '{"v": 1}'
    atomic_write(target, b'{"v": 2}')
    assert target.read_bytes() == b'{"v": 2}'
    # no half-written temporaries survive a successful write
    assert list(tmp_path.glob("*.tmp")) == []


def test_journal_sweeps_stale_tmp_files(tmp_path):
    (tmp_path / "snapshot.json.abc123.tmp").write_bytes(b"half-written")
    with CrawlJournal(tmp_path):
        pass
    assert list(tmp_path.glob("*.tmp")) == []


# -- record round-trip ------------------------------------------------------


def test_record_jsonable_roundtrip(pristine_world, sample):
    records = _crawl(pristine_world, sample[:4])
    for app_id, record in records.items():
        clone = record_from_jsonable(record_to_jsonable(record))
        assert record_to_jsonable(clone) == record_to_jsonable(record)
        # outcomes come back in crawl order, not canonical-JSON order
        assert list(clone.outcomes) == list(record.outcomes)
        assert clone.app_id == app_id


# -- journal append / load --------------------------------------------------


def test_journal_roundtrip(tmp_path, pristine_world, sample):
    apps = sample[:6]
    with CrawlJournal(tmp_path) as journal:
        records = _crawl(pristine_world, apps, journal=journal)
        assert len(journal) == len(apps)
        assert all(a in journal for a in apps)
    reopened = CrawlJournal(tmp_path)
    assert _canon(reopened.records) == _canon(records)
    assert reopened.state is not None
    reopened.close()


def test_journal_refuses_existing_without_resume(tmp_path, pristine_world, sample):
    with CrawlJournal(tmp_path) as journal:
        _crawl(pristine_world, sample[:2], journal=journal)
    with pytest.raises(FileExistsError, match="--resume"):
        CrawlJournal(tmp_path, resume=False)


def test_fresh_directory_allowed_without_resume(tmp_path):
    journal = CrawlJournal(tmp_path / "new", resume=False)
    assert len(journal) == 0
    journal.close()


# -- corruption policy ------------------------------------------------------


def test_torn_final_line_silently_truncated(tmp_path, pristine_world, sample):
    apps = sample[:4]
    with CrawlJournal(tmp_path) as journal:
        _crawl(pristine_world, apps, journal=journal)
    path = tmp_path / "journal.jsonl"
    raw = path.read_bytes()
    # tear the last line: drop its trailing newline and final third
    torn = raw[: len(raw) - len(raw.splitlines(keepends=True)[-1]) // 3 - 1]
    path.write_bytes(torn)

    reopened = CrawlJournal(tmp_path)
    assert reopened.truncated_torn_line
    assert len(reopened) == len(apps) - 1
    assert reopened.quarantined == ()  # silent: a torn tail is expected
    assert not (tmp_path / "journal.jsonl.corrupt").exists()
    # the journal was rewritten clean: a second open sees no damage
    reopened.close()
    again = CrawlJournal(tmp_path)
    assert not again.truncated_torn_line
    assert len(again) == len(apps) - 1
    again.close()


def test_interior_corruption_quarantined(
    tmp_path, pristine_world, sample, caplog
):
    apps = sample[:5]
    with CrawlJournal(tmp_path) as journal:
        _crawl(pristine_world, apps, journal=journal)
    path = tmp_path / "journal.jsonl"
    lines = path.read_bytes().splitlines(keepends=True)
    victim = json.loads(lines[2].split(b"\t", 1)[1])["app_id"]
    # flip one payload byte (past the app_id field, so the quarantine
    # can still name the victim): the checksum no longer matches
    mid = len(lines[2]) // 2
    lines[2] = lines[2][:mid] + b"X" + lines[2][mid + 1:]
    path.write_bytes(b"".join(lines))

    with caplog.at_level(logging.WARNING, logger="repro.crawler.checkpoint"):
        reopened = CrawlJournal(tmp_path)
    assert len(reopened) == len(apps) - 1
    assert victim not in reopened
    assert victim in reopened.quarantined
    sidecar = tmp_path / "journal.jsonl.corrupt"
    assert sidecar.exists() and sidecar.stat().st_size > 0
    assert any("quarantined" in r.message for r in caplog.records)
    # resuming re-crawls the quarantined app instead of crashing
    resumed = _crawl(pristine_world, apps, journal=reopened)
    assert sorted(resumed) == apps
    reopened.close()


def test_next_sidecar_path_counts_up(tmp_path):
    target = tmp_path / "journal.jsonl"
    first = next_sidecar_path(target)
    assert first == tmp_path / "journal.jsonl.corrupt"
    first.write_bytes(b"evidence one\n")
    second = next_sidecar_path(target)
    assert second == tmp_path / "journal.jsonl.corrupt.1"
    second.write_bytes(b"evidence two\n")
    assert next_sidecar_path(target) == tmp_path / "journal.jsonl.corrupt.2"


def _corrupt_interior_line(path, index=1):
    """Flip a byte in the middle of journal line *index*; return its app."""
    lines = path.read_bytes().splitlines(keepends=True)
    victim = json.loads(lines[index].split(b"\t", 1)[1])["app_id"]
    mid = len(lines[index]) // 2
    lines[index] = lines[index][:mid] + b"X" + lines[index][mid + 1:]
    path.write_bytes(b"".join(lines))
    return victim


def test_repeated_quarantine_never_overwrites_a_sidecar(
    tmp_path, pristine_world, sample
):
    """Interrupt-and-resume twice: both ``.corrupt`` sidecars survive.

    The first quarantine takes the plain ``.corrupt`` name; a second
    corruption event on a later resume must go to ``.corrupt.1`` —
    overwriting (or appending to) the first sidecar would destroy or
    interleave the evidence of the earlier corruption.
    """
    apps = sample[:6]
    with CrawlJournal(tmp_path) as journal:
        _crawl(pristine_world, apps, journal=journal)
    path = tmp_path / "journal.jsonl"

    first_victim = _corrupt_interior_line(path, index=1)
    reopened = CrawlJournal(tmp_path)
    first_sidecar = tmp_path / "journal.jsonl.corrupt"
    assert first_sidecar.exists()
    evidence = first_sidecar.read_bytes()
    # resume: re-crawl the quarantined app, making the journal whole again
    _crawl(pristine_world, apps, journal=reopened)
    reopened.close()

    second_victim = _corrupt_interior_line(path, index=2)
    again = CrawlJournal(tmp_path)
    second_sidecar = tmp_path / "journal.jsonl.corrupt.1"
    assert second_sidecar.exists(), "second quarantine must get a new name"
    # the first sidecar is untouched, byte for byte
    assert first_sidecar.read_bytes() == evidence
    assert second_sidecar.read_bytes() != evidence
    assert first_victim not in again.quarantined  # it was re-crawled
    assert second_victim in again.quarantined
    again.close()


def test_corrupt_snapshot_quarantined(tmp_path, pristine_world, sample, caplog):
    apps = sample[:4]
    with CrawlJournal(tmp_path, snapshot_every=2) as journal:
        _crawl(pristine_world, apps, journal=journal)
    snapshot = tmp_path / "snapshot.json"
    assert snapshot.exists()
    snapshot.write_text(snapshot.read_text()[:-20])  # truncate mid-document

    with caplog.at_level(logging.WARNING, logger="repro.crawler.checkpoint"):
        reopened = CrawlJournal(tmp_path)
    assert (tmp_path / "snapshot.json.corrupt").exists()
    assert not snapshot.exists()
    # the snapshot's apps fall back to not-durable and get re-crawled
    resumed = _crawl(pristine_world, apps, journal=reopened)
    assert sorted(resumed) == apps
    reopened.close()


# -- compaction -------------------------------------------------------------


def test_compaction_preserves_resume(tmp_path, pristine_world, sample):
    apps = sample[:7]
    plain = _crawl(pristine_world, apps)
    with CrawlJournal(tmp_path, snapshot_every=3) as journal:
        journaled = _crawl(pristine_world, apps, journal=journal)
    assert (tmp_path / "snapshot.json").exists()
    # the journal holds only the appends since the last compaction
    journal_lines = (tmp_path / "journal.jsonl").read_bytes().count(b"\n")
    assert journal_lines == len(apps) % 3
    reopened = CrawlJournal(tmp_path, snapshot_every=3)
    assert _canon(reopened.records) == _canon(journaled) == _canon(plain)
    reopened.close()


# -- configuration fingerprint ----------------------------------------------


def test_fingerprint_mismatch_refused(tmp_path, pristine_world, sample):
    with CrawlJournal(tmp_path) as journal:
        _crawl(pristine_world, sample[:2], journal=journal)
    other_world = run_simulation(
        ScaleConfig(scale=TEST_SCALE, master_seed=TEST_SEED + 1, fault_rate=FAULT_RATE)
    )
    journal = CrawlJournal(tmp_path)
    with pytest.raises(ValueError, match="different configuration"):
        make_crawler(other_world).crawl_many(sample[:2], journal=journal)
    journal.close()


# -- CrashPlan --------------------------------------------------------------


def test_crash_plan_fires_once_at_its_point():
    plan = CrashPlan(app_index=1, point="after_crawl")
    plan.advance()  # app 0
    assert not plan.due("after_crawl")
    plan.check("after_crawl")  # no-op
    plan.advance()  # app 1
    assert plan.due("after_crawl")
    assert not plan.due("before_app")
    with pytest.raises(SimulatedCrash):
        plan.check("after_crawl")
    assert plan.fired
    plan.advance()
    assert not plan.due("after_crawl")  # inert after firing


def test_crash_plan_validates_inputs():
    with pytest.raises(ValueError, match="unknown crash point"):
        CrashPlan(app_index=0, point="during_lunch")
    with pytest.raises(ValueError, match="app_index"):
        CrashPlan(app_index=-1)


def test_crash_plan_random_is_seeded():
    a = CrashPlan.random(seed=99, n_apps=20)
    b = CrashPlan.random(seed=99, n_apps=20)
    assert (a.app_index, a.point) == (b.app_index, b.point)
    assert 0 <= a.app_index < 20
    assert a.point in CRASH_POINTS


def test_simulated_crash_not_caught_by_except_exception():
    with pytest.raises(SimulatedCrash):
        try:
            raise SimulatedCrash("die")
        except Exception:  # noqa: BLE001 - the point of the test
            pytest.fail("SimulatedCrash must not be swallowed as Exception")
