"""Optimality (KKT) checks for the SMO solver.

A converged C-SVC solution must satisfy the dual constraints and the
Karush-Kuhn-Tucker conditions; these tests verify them directly on the
fitted model rather than trusting predictions alone.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.kernels import rbf_kernel
from repro.ml.svm import SVC, _smo


def _blobs(rng, n=80, separation=2.0, d=3):
    x = np.vstack(
        [rng.normal(0, 1, (n // 2, d)), rng.normal(separation, 1, (n // 2, d))]
    )
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


def _solve(x, y, c=1.0, gamma=0.5, tol=1e-3):
    signs = np.where(np.asarray(y) == 1, 1.0, -1.0)
    kernel = rbf_kernel(x, x, gamma=gamma)
    alphas, bias, _iters = _smo(kernel, signs, c, tol, max_passes=300)
    return alphas, bias, signs, kernel


class TestDualFeasibility:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 500), c=st.sampled_from([0.5, 1.0, 4.0]))
    def test_box_constraints_and_equality(self, seed, c):
        rng = np.random.default_rng(seed)
        x, y = _blobs(rng)
        alphas, _bias, signs, _kernel = _solve(x, y, c=c)
        assert np.all(alphas >= -1e-9)
        assert np.all(alphas <= c + 1e-9)
        # Equality constraint of the dual: sum_i alpha_i y_i = 0.
        assert abs(float(alphas @ signs)) < 1e-6

    def test_kkt_conditions_hold_within_tolerance(self):
        rng = np.random.default_rng(3)
        x, y = _blobs(rng, n=120, separation=2.5)
        c, tol = 1.0, 1e-3
        alphas, bias, signs, kernel = _solve(x, y, c=c, tol=tol)
        margins = signs * ((alphas * signs) @ kernel + bias)
        slack = 5 * tol  # SMO terminates within tol of each condition
        for i in range(len(signs)):
            if alphas[i] < 1e-9:  # alpha = 0  =>  y f(x) >= 1
                assert margins[i] >= 1 - slack
            elif alphas[i] > c - 1e-9:  # alpha = C  =>  y f(x) <= 1
                assert margins[i] <= 1 + slack
            else:  # unbound support vector => y f(x) ~ 1
                assert margins[i] == pytest.approx(1.0, abs=slack)

    def test_dual_objective_beats_zero(self):
        """The solver must improve on the trivial alphas = 0 point."""
        rng = np.random.default_rng(9)
        x, y = _blobs(rng)
        alphas, _bias, signs, kernel = _solve(x, y)
        coef = alphas * signs
        objective = alphas.sum() - 0.5 * float(coef @ kernel @ coef)
        assert objective > 0.0

    def test_support_vector_consistency_with_public_api(self):
        rng = np.random.default_rng(12)
        x, y = _blobs(rng)
        model = SVC(c=1.0, gamma=0.5).fit(x, y)
        alphas, _bias, _signs, _kernel = _solve(x, y, c=1.0, gamma=0.5)
        assert model.n_support_ == int(np.sum(alphas > 1e-12))
