"""Tests for FRAppE feature extraction."""

from collections import Counter

import numpy as np
import pytest

from repro.core.features import (
    AGGREGATION_FEATURES,
    ALL_FEATURES,
    ON_DEMAND_FEATURES,
    ROBUST_FEATURES,
    FeatureExtractor,
)
from repro.crawler.crawler import CrawlRecord
from repro.platform.posts import PostLog
from repro.urlinfra.wot import WotService


@pytest.fixture()
def extractor(rng):
    wot = WotService(rng)
    wot.set_score("spam.com", 2.0)
    log = PostLog()
    log.new_post(day=0, user_id=0, app_id="x", app_name="The App",
                 link="http://spam.com/a")
    log.new_post(day=0, user_id=0, app_id="x", app_name="The App",
                 link="https://apps.facebook.com/x")
    log.new_post(day=0, user_id=0, app_id="x", app_name="The App")
    log.new_post(day=0, user_id=0, app_id="y", app_name="Solo App")
    return FeatureExtractor(
        wot=wot,
        post_log=log,
        malicious_names=Counter({"The App": 3}),
        known_malicious_ids={"x"},
        id_to_name=log.app_names(),
    )


def _record(**kwargs):
    defaults = dict(app_id="x", summary_ok=True, name="The App")
    defaults.update(kwargs)
    return CrawlRecord(**defaults)


class TestFeatureGroups:
    def test_group_definitions(self):
        assert set(ON_DEMAND_FEATURES) | set(AGGREGATION_FEATURES) == set(ALL_FEATURES)
        assert not set(ON_DEMAND_FEATURES) & set(AGGREGATION_FEATURES)
        assert set(ROBUST_FEATURES) <= set(ALL_FEATURES)
        assert "has_description" not in ROBUST_FEATURES  # trivially faked


class TestOnDemandFeatures:
    def test_summary_flags(self, extractor):
        record = _record(description="d", company="", category="Games")
        assert extractor.feature_value("has_description", record) == 1.0
        assert extractor.feature_value("has_company", record) == 0.0
        assert extractor.feature_value("has_category", record) == 1.0

    def test_profile_posts_flag(self, extractor):
        empty = _record()
        filled = _record(feed_ok=True, profile_posts=[{"message": "hi"}])
        assert extractor.feature_value("has_profile_posts", empty) == 0.0
        assert extractor.feature_value("has_profile_posts", filled) == 1.0

    def test_permission_count(self, extractor):
        record = _record(inst_ok=True, permissions=("publish_stream", "email"))
        assert extractor.feature_value("permission_count", record) == 2.0

    def test_client_id_mismatch(self, extractor):
        honest = _record(inst_ok=True, observed_client_id="x")
        rotated = _record(inst_ok=True, observed_client_id="zzz")
        assert extractor.feature_value("client_id_mismatch", honest) == 0.0
        assert extractor.feature_value("client_id_mismatch", rotated) == 1.0

    def test_wot_score(self, extractor):
        spam = _record(inst_ok=True, redirect_uri="http://spam.com/lp")
        facebook = _record(inst_ok=True, redirect_uri="https://apps.facebook.com/a")
        unknown = _record(inst_ok=True, redirect_uri="http://nowhere.net/x")
        missing = _record()
        assert extractor.feature_value("wot_score", spam) == 2.0
        assert extractor.feature_value("wot_score", facebook) > 90
        assert extractor.feature_value("wot_score", unknown) == -1.0
        assert extractor.feature_value("wot_score", missing) == -1.0


class TestAggregationFeatures:
    def test_name_match_excludes_self(self, extractor):
        # 'x' is itself one of the 3 'The App' entries: 2 others remain.
        record = _record()
        assert extractor.feature_value("name_matches_malicious", record) == 1.0
        # An unknown app with a unique name does not match.
        solo = _record(app_id="y", name="Solo App")
        assert extractor.feature_value("name_matches_malicious", solo) == 0.0

    def test_name_match_self_only_does_not_count(self, rng):
        extractor = FeatureExtractor(
            wot=WotService(rng),
            malicious_names=Counter({"Lonely": 1}),
            known_malicious_ids={"x"},
        )
        record = _record(name="Lonely")
        assert extractor.feature_value("name_matches_malicious", record) == 0.0

    def test_name_falls_back_to_post_metadata(self, extractor):
        # Summary crawl failed (deleted app): name comes from posts.
        record = _record(summary_ok=False, name=None)
        assert extractor.feature_value("name_matches_malicious", record) == 1.0

    def test_external_link_ratio(self, extractor):
        record = _record()
        # 1 external of 3 posts (the facebook.com link is internal).
        assert extractor.feature_value("external_link_ratio", record) == (
            pytest.approx(1 / 3)
        )

    def test_external_ratio_without_posts(self, extractor):
        record = _record(app_id="unseen-app")
        assert extractor.feature_value("external_link_ratio", record) == 0.0


class TestVectors:
    def test_vector_order_matches_features(self, extractor):
        record = _record(description="d")
        vector = extractor.vector(record, ("has_description", "wot_score"))
        assert vector.tolist() == [1.0, -1.0]

    def test_matrix_shape(self, extractor):
        records = [_record(), _record(app_id="y", name="Solo App")]
        matrix = extractor.matrix(records)
        assert matrix.shape == (2, len(ALL_FEATURES))
        assert extractor.matrix([], ALL_FEATURES).shape == (0, len(ALL_FEATURES))

    def test_matrix_bit_identical_to_vector_stack(self, extractor):
        """The batched columns must reproduce vector() exactly."""
        records = [
            _record(description="d", company="c", category="Games"),
            _record(app_id="y", name="Solo App"),
            _record(inst_ok=True, redirect_uri="http://spam.com/lp",
                    permissions=("publish_stream", "email"),
                    observed_client_id="zzz"),
            _record(inst_ok=True, redirect_uri="http://spam.com/lp"),
            _record(app_id="unseen-app", name=None, summary_ok=False),
            _record(feed_ok=True, profile_posts=[{"message": "hi"}]),
        ]
        for features in (ALL_FEATURES, ON_DEMAND_FEATURES, ("wot_score",)):
            reference = np.vstack([extractor.vector(r, features) for r in records])
            batched = extractor.matrix(records, features)
            assert batched.dtype == reference.dtype
            assert np.array_equal(batched, reference)

    def test_matrix_unknown_feature_rejected(self, extractor):
        with pytest.raises(KeyError):
            extractor.matrix([_record()], ("bogus",))

    def test_unknown_feature_rejected(self, extractor):
        with pytest.raises(KeyError):
            extractor.feature_value("bogus", _record())

    def test_name_counter_helper(self):
        records = {
            "a": _record(app_id="a", name="N"),
            "b": _record(app_id="b", name="N"),
            "c": _record(app_id="c", name="M"),
        }
        counter = FeatureExtractor.name_counter(records, {"a", "b"})
        assert counter == Counter({"N": 2})
