"""Tests for the Sec 7 countermeasure policies."""

import pytest

from repro.collusion.appnets import CollusionAnalyzer
from repro.core.recommendations import (
    PromotionBlocker,
    PromptFeedAuthenticator,
    simulate_policy_rollout,
)
from repro.platform.apps import AppRegistry
from repro.platform.graph_api import GraphApi
from repro.platform.oauth import TokenService
from repro.platform.posts import Post, PostLog
from repro.urlinfra.redirector import IndirectionSite, RedirectorNetwork
from repro.urlinfra.shortener import Shortener


def _post(post_id, app_id, link):
    return Post(post_id=post_id, day=0, user_id=0, app_id=app_id, link=link)


class TestPromotionBlocker:
    @pytest.fixture()
    def blocker(self, rng):
        shortener = Shortener(rng)
        redirector = RedirectorNetwork(rng)
        redirector.register(
            IndirectionSite(url="http://go.spam.com/r/1", target_app_ids=["t"])
        )
        return blocker_tuple(shortener, redirector)

    def test_direct_promotion_blocked(self, blocker):
        policy, _shortener = blocker
        post = _post(0, "promoter", (
            "https://www.facebook.com/apps/application.php?id=victim"
        ))
        assert policy.verdict(post) is not None

    def test_self_promotion_allowed(self, blocker):
        policy, _shortener = blocker
        post = _post(0, "app-1", (
            "https://www.facebook.com/apps/application.php?id=app-1"
        ))
        assert policy.verdict(post) is None

    def test_shortened_promotion_expanded_and_blocked(self, blocker):
        policy, shortener = blocker
        short = shortener.shorten(
            "https://www.facebook.com/apps/application.php?id=victim"
        )
        assert policy.verdict(_post(0, "promoter", short)) is not None

    def test_indirection_site_blocked(self, blocker):
        policy, shortener = blocker
        short = shortener.shorten("http://go.spam.com/r/1")
        assert policy.verdict(_post(0, "promoter", short)) is not None
        assert policy.verdict(_post(1, "promoter", "http://go.spam.com/r/1"))

    def test_ordinary_links_allowed(self, blocker):
        policy, _shortener = blocker
        assert policy.verdict(_post(0, "app", "http://example.com/x")) is None
        assert policy.verdict(_post(1, "app", None)) is None
        assert policy.verdict(_post(2, None, "http://example.com")) is None

    def test_screen_counts(self, blocker):
        policy, _shortener = blocker
        posts = [
            _post(0, "a", "https://www.facebook.com/apps/application.php?id=b"),
            _post(1, "a", None),
        ]
        report = policy.screen(posts)
        assert report.posts_seen == 2
        assert report.posts_blocked == 1
        assert report.blocked_fraction == 0.5

    def test_rollout_dismantles_appnets(self, world):
        """With policy (a), the rediscovered collusion graph is empty."""
        report = simulate_policy_rollout(world)
        assert report.posts_blocked > 0
        blocked = set(report.blocked)
        # Rebuild the collusion graph over surviving posts only.
        survivors = PostLog()
        for post in world.post_log:
            if post.post_id in blocked:
                continue
            survivors.new_post(
                day=post.day, user_id=post.user_id, app_id=post.app_id,
                app_name=post.app_name, message=post.message, link=post.link,
            )

        class _PolicyWorld:
            post_log = survivors
            services = world.services
            registry = world.registry

        collusion = CollusionAnalyzer(_PolicyWorld()).discover()
        assert len(collusion.graph) == 0


def blocker_tuple(shortener, redirector):
    policy = PromotionBlocker({"bit.ly": shortener}, redirector)
    return policy, shortener


class TestPromptFeedAuthenticator:
    @pytest.fixture()
    def stack(self, rng):
        registry = AppRegistry(rng)
        victim = registry.create(name="FarmVille", developer_id="zynga")
        attacker_app = registry.create(
            name="Scam", developer_id="hacker", truth_malicious=True
        )
        tokens = TokenService()
        log = PostLog()
        graph = GraphApi(registry, log)
        auth = PromptFeedAuthenticator(graph, tokens)
        return victim, attacker_app, tokens, auth, log

    def test_legitimate_post_goes_through(self, stack):
        victim, _attacker, tokens, auth, log = stack
        token = tokens.issue(1, victim.app_id, ("publish_stream",))
        post = auth.prompt_feed(
            api_key=victim.app_id, bearer_token=token.token,
            user_id=1, message="harvest time!", link=None, day=0,
        )
        assert post.app_id == victim.app_id
        assert len(log) == 1

    def test_forged_attribution_rejected(self, stack):
        victim, attacker_app, tokens, auth, log = stack
        # The attacker only holds a token for their OWN app.
        token = tokens.issue(2, attacker_app.app_id, ("publish_stream",))
        with pytest.raises(PermissionError):
            auth.prompt_feed(
                api_key=victim.app_id, bearer_token=token.token,
                user_id=2, message="WOW free credits", link=None, day=0,
            )
        assert auth.rejected == 1
        assert len(log) == 0

    def test_invalid_token_rejected(self, stack):
        victim, _attacker, _tokens, auth, _log = stack
        with pytest.raises(PermissionError):
            auth.prompt_feed(
                api_key=victim.app_id, bearer_token="garbage",
                user_id=2, message="spam", link=None, day=0,
            )

    def test_token_without_posting_scope_rejected(self, stack):
        victim, _attacker, tokens, auth, _log = stack
        token = tokens.issue(1, victim.app_id, ("email",))
        with pytest.raises(PermissionError):
            auth.prompt_feed(
                api_key=victim.app_id, bearer_token=token.token,
                user_id=1, message="hello", link=None, day=0,
            )

    def test_revoked_token_rejected(self, stack):
        victim, _attacker, tokens, auth, _log = stack
        token = tokens.issue(1, victim.app_id, ("publish_stream",))
        tokens.revoke(token.token)
        with pytest.raises(PermissionError):
            auth.prompt_feed(
                api_key=victim.app_id, bearer_token=token.token,
                user_id=1, message="hello", link=None, day=0,
            )
