"""Tests for the collusion graph and AppNet discovery.

Graph algorithms are cross-validated against networkx; discovery is
checked both on a handcrafted miniature world and on the shared
simulated world.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.collusion.appnets import CollusionAnalyzer
from repro.collusion.graph import DirectedGraph

_EDGES = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=60
)


def _build_both(edges):
    ours = DirectedGraph()
    theirs = nx.DiGraph()
    for src, dst in edges:
        if src == dst:
            continue
        ours.add_edge(src, dst)
        theirs.add_edge(src, dst)
    return ours, theirs


class TestDirectedGraph:
    def test_self_loops_ignored(self):
        graph = DirectedGraph()
        graph.add_edge("a", "a")
        assert len(graph) == 0

    def test_degree_counts_both_directions_once(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        assert graph.degree("a") == 1  # undirected view
        assert graph.out_degree("a") == 1
        assert graph.in_degree("a") == 1

    def test_triangle_clustering(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("a", "c")
        assert graph.local_clustering("a") == 1.0
        assert graph.local_clustering("b") == 1.0

    def test_star_clustering_is_zero(self):
        graph = DirectedGraph()
        for leaf in "bcde":
            graph.add_edge("a", leaf)
        assert graph.local_clustering("a") == 0.0
        assert graph.local_clustering("b") == 0.0  # single neighbor

    def test_subgraph(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        sub = graph.subgraph({"a", "b"})
        assert len(sub) == 2
        assert sub.edge_count() == 1

    @settings(deadline=None)
    @given(edges=_EDGES)
    def test_components_match_networkx(self, edges):
        ours, theirs = _build_both(edges)
        our_components = sorted(
            sorted(c) for c in ours.connected_components()
        )
        nx_components = sorted(
            sorted(c) for c in nx.weakly_connected_components(theirs)
        )
        assert sorted(map(len, our_components)) == sorted(map(len, nx_components))
        assert sorted(our_components) == sorted(nx_components)

    @settings(deadline=None)
    @given(edges=_EDGES)
    def test_clustering_matches_networkx(self, edges):
        ours, theirs = _build_both(edges)
        undirected = theirs.to_undirected()
        expected = nx.clustering(undirected)
        for node in ours.nodes():
            assert ours.local_clustering(node) == pytest.approx(
                expected[node], abs=1e-9
            )

    @settings(deadline=None)
    @given(edges=_EDGES)
    def test_degree_matches_networkx(self, edges):
        ours, theirs = _build_both(edges)
        undirected = theirs.to_undirected()
        for node in ours.nodes():
            assert ours.degree(node) == undirected.degree(node)


class TestDiscoveryOnMiniWorld:
    """Hand-wire a world: one promoter posting direct links + a site."""

    @pytest.fixture(scope="class")
    def mini(self):
        from repro.ecosystem.simulation import run_simulation
        from repro.config import ScaleConfig
        # A tiny but real world keeps all the plumbing honest.
        world = run_simulation(ScaleConfig(scale=0.01, master_seed=7))
        analyzer = CollusionAnalyzer(world, probe_visits=1500)
        return world, analyzer, analyzer.discover()

    def test_only_malicious_apps_collude(self, mini):
        world, _analyzer, collusion = mini
        truth = world.truth_malicious_ids()
        assert set(collusion.graph.nodes()) <= truth

    def test_discovered_nodes_are_colluding_truth(self, mini):
        world, _analyzer, collusion = mini
        colluding = world.colluding_truth_ids()
        found = set(collusion.graph.nodes())
        # Coverage: at this tiny scale, promotee pods that no promoter
        # happened to target stay invisible; half the colluding apps is
        # the floor (larger scales rediscover far more).
        assert len(found & colluding) >= 0.5 * len(colluding)
        assert found <= colluding

    def test_roles_partition_nodes(self, mini):
        _world, _analyzer, collusion = mini
        promoters = collusion.promoters()
        promotees = collusion.promotees()
        dual = collusion.dual_role()
        assert not promoters & promotees
        assert not promoters & dual
        assert not promotees & dual
        assert promoters | promotees | dual == set(collusion.graph.nodes())

    def test_direct_edges_subset_of_graph(self, mini):
        _world, _analyzer, collusion = mini
        edges = set(collusion.graph.edges())
        assert collusion.direct_edges <= edges

    def test_components_respect_campaign_boundaries(self, mini):
        world, _analyzer, collusion = mini
        campaign_of = {}
        for campaign in world.campaigns:
            for app in campaign.apps:
                campaign_of[app.app_id] = campaign.plan.campaign_id
        for component in collusion.graph.connected_components():
            campaigns = {campaign_of[n] for n in component}
            assert len(campaigns) == 1  # promotion never crosses orgs

    def test_stats_are_consistent(self, mini):
        _world, analyzer, collusion = mini
        stats = analyzer.stats(collusion)
        assert stats.n_colluding == len(collusion.graph)
        assert stats.n_promoters + stats.n_promotees + stats.n_dual == (
            stats.n_colluding
        )
        assert sum(stats.top_component_sizes) <= stats.n_colluding
        assert 0.0 <= stats.degree_over_10_fraction <= 1.0
        assert 0.0 <= stats.clustering_over_074_fraction <= 1.0

    def test_indirection_bookkeeping(self, mini):
        world, analyzer, collusion = mini
        indirection = collusion.indirection
        for url in indirection.site_targets:
            assert world.services.redirector.is_indirection(url)
        assert indirection.bitly_links <= indirection.total_short_links

    def test_site_probe_recovers_most_targets(self, mini):
        world, _analyzer, collusion = mini
        for url, observed in collusion.indirection.site_targets.items():
            actual = set(world.services.redirector.site(url).target_app_ids)
            assert observed <= actual
            assert len(observed) >= 0.8 * len(actual)

    def test_name_reuse_counts(self, mini):
        _world, analyzer, collusion = mini
        promoter_names, promotee_names = analyzer.name_reuse(collusion)
        assert promoter_names <= max(len(collusion.indirection.promoters()), 1)
        assert promotee_names <= max(len(collusion.indirection.promotees()), 1)
