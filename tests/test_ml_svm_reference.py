"""Cross-validation of the SMO solver against a scipy QP reference.

The C-SVC dual is a box-constrained QP with one equality constraint:

    max  sum(a) - 0.5 * (a*y)' K (a*y)
    s.t. 0 <= a_i <= C,  sum(a_i y_i) = 0

``scipy.optimize.minimize`` (SLSQP) solves small instances exactly
enough to check that SMO reaches the same optimum — a much stronger
guarantee than prediction-accuracy tests.
"""

import numpy as np
import pytest
from scipy import optimize

from repro.ml.kernels import rbf_kernel
from repro.ml.svm import _smo


def _dual_objective(alphas, signs, kernel):
    coef = alphas * signs
    return float(alphas.sum() - 0.5 * coef @ kernel @ coef)


def _solve_reference(kernel, signs, c):
    n = len(signs)

    def negative_objective(a):
        return -_dual_objective(a, signs, kernel)

    def gradient(a):
        return -(np.ones(n) - (kernel * np.outer(signs, signs)) @ a)

    result = optimize.minimize(
        negative_objective,
        x0=np.full(n, c / 2),
        jac=gradient,
        bounds=[(0.0, c)] * n,
        constraints=[{"type": "eq", "fun": lambda a: a @ signs}],
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-10},
    )
    assert result.success, result.message
    return result.x


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("c", [0.5, 1.0])
def test_smo_matches_qp_optimum(seed, c):
    rng = np.random.default_rng(seed)
    n, d = 30, 2
    x = np.vstack(
        [rng.normal(0, 1, (n // 2, d)), rng.normal(1.5, 1, (n // 2, d))]
    )
    signs = np.array([-1.0] * (n // 2) + [1.0] * (n // 2))
    kernel = rbf_kernel(x, x, gamma=0.8)

    smo_alphas, _bias, _iters = _smo(kernel, signs, c, tol=1e-4, max_passes=500)
    reference_alphas = _solve_reference(kernel, signs, c)

    smo_value = _dual_objective(smo_alphas, signs, kernel)
    reference_value = _dual_objective(reference_alphas, signs, kernel)
    # The dual is concave: neither solver can exceed the optimum, and
    # SMO must come within a small gap of the reference.
    assert smo_value <= reference_value + 1e-4
    assert smo_value >= reference_value - max(0.02 * abs(reference_value), 0.05)


def test_smo_predictions_match_reference_predictions():
    rng = np.random.default_rng(5)
    n, d, c = 40, 3, 1.0
    x = np.vstack(
        [rng.normal(0, 1, (n // 2, d)), rng.normal(2.0, 1, (n // 2, d))]
    )
    signs = np.array([-1.0] * (n // 2) + [1.0] * (n // 2))
    kernel = rbf_kernel(x, x, gamma=0.5)

    smo_alphas, smo_bias, _ = _smo(kernel, signs, c, tol=1e-4, max_passes=500)
    reference_alphas = _solve_reference(kernel, signs, c)
    # Recover the reference bias from an unbound support vector.
    unbound = np.flatnonzero(
        (reference_alphas > 1e-4) & (reference_alphas < c - 1e-4)
    )
    i = int(unbound[0])
    reference_bias = signs[i] - float(
        (reference_alphas * signs) @ kernel[:, i]
    )

    smo_decisions = (smo_alphas * signs) @ kernel + smo_bias
    reference_decisions = (reference_alphas * signs) @ kernel + reference_bias
    agreement = np.mean(
        np.sign(smo_decisions) == np.sign(reference_decisions)
    )
    assert agreement >= 0.95
