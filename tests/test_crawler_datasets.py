"""Tests for the crawler, Social Bakers, and dataset construction."""

import numpy as np
import pytest

from repro.crawler.crawler import AppCrawler
from repro.crawler.socialbakers import SocialBakers


class TestSocialBakers:
    def test_vetting_and_ratings(self, rng, world):
        directory = SocialBakers(rng)
        benign = world.registry.benign()[:200]
        directory.vet_population(benign, coverage=0.9)
        vetted = directory.vetted_app_ids()
        assert 0.8 * 200 <= len(vetted) <= 200
        ratings = [directory.rating(a) for a in vetted]
        assert all(1.0 <= r <= 5.0 for r in ratings)
        at_least_3 = np.mean([r >= 3.0 for r in ratings])
        assert at_least_3 > 0.8  # "90% have a rating of at least 3"

    def test_rating_bounds_enforced(self, rng):
        directory = SocialBakers(rng)
        with pytest.raises(ValueError):
            directory.list_app("x", 0.5)


class TestCrawler:
    @pytest.fixture(scope="class")
    def crawler(self, world):
        return AppCrawler(world)

    def _alive_benign(self, world):
        day = world.schedule.inst_crawl_day + 120
        return next(
            a for a in world.registry.benign()
            if not a.is_deleted(day) and a.install_flow_crawlable
        )

    def test_summary_crawl_of_alive_app(self, world, crawler):
        app = self._alive_benign(world)
        record = crawler.crawl_app(app.app_id)
        assert record.summary_ok
        assert record.name == app.name
        assert record.description == app.description
        # weekly crawls over three months
        assert 10 <= len(record.mau_observations) <= 14

    def test_deleted_app_crawls_fail(self, world, crawler):
        deleted = next(
            a for a in world.registry.malicious()
            if a.is_deleted(world.schedule.profilefeed_crawl_day)
        )
        record = crawler.crawl_app(deleted.app_id)
        assert not record.summary_ok
        assert not record.feed_ok
        assert not record.inst_ok
        assert not record.complete
        assert record.client_id_mismatch is None

    def test_human_only_flow_blocks_inst_crawl(self, world, crawler):
        app = next(
            a for a in world.registry.benign()
            if not a.install_flow_crawlable and not a.is_deleted()
        )
        record = crawler.crawl_app(app.app_id)
        assert not record.inst_ok

    def test_inst_crawl_observes_permissions(self, world, crawler):
        app = self._alive_benign(world)
        record = crawler.crawl_app(app.app_id)
        assert record.inst_ok
        # Honest benign app: client ID matches, permissions observed.
        if not app.client_id_pool:
            assert record.observed_client_id == app.app_id
            assert record.permissions == app.permissions
            assert record.client_id_mismatch is False

    def test_median_max_mau(self, world, crawler):
        app = self._alive_benign(world)
        record = crawler.crawl_app(app.app_id)
        assert record.max_mau >= record.median_mau > 0

    def test_crawl_many_is_keyed_by_app(self, world, crawler):
        ids = [a.app_id for a in world.registry.all_apps()[:5]]
        records = crawler.crawl_many(ids)
        assert set(records) == set(ids)


class TestDatasets:
    def test_sample_is_balanced_and_disjoint(self, pipeline_result):
        bundle = pipeline_result.bundle
        assert bundle.d_sample_malicious
        assert len(bundle.d_sample_benign) == len(bundle.d_sample_malicious)
        assert not (bundle.d_sample_benign & bundle.d_sample_malicious)

    def test_sample_within_total(self, pipeline_result):
        bundle = pipeline_result.bundle
        assert bundle.d_sample <= bundle.d_total

    def test_whitelist_excluded_from_malicious(self, pipeline_result):
        bundle = pipeline_result.bundle
        assert not (bundle.whitelist & bundle.d_sample_malicious)

    def test_whitelist_rescues_piggybacked_populars(self, pipeline_result):
        piggybacked = pipeline_result.world.piggybacked_ids()
        bundle = pipeline_result.bundle
        rescued = piggybacked & bundle.whitelist
        assert len(rescued) >= 0.8 * len(piggybacked)

    def test_labels(self, pipeline_result):
        bundle = pipeline_result.bundle
        malicious = next(iter(bundle.d_sample_malicious))
        benign = next(iter(bundle.d_sample_benign))
        assert bundle.label(malicious) == 1
        assert bundle.label(benign) == 0
        with pytest.raises(KeyError):
            bundle.label("not-in-sample")

    def test_dataset_hierarchy(self, pipeline_result):
        bundle = pipeline_result.bundle
        summary_b, summary_m = bundle.d_summary
        inst_b, inst_m = bundle.d_inst
        complete_b, complete_m = bundle.d_complete
        assert summary_b <= bundle.d_sample_benign
        assert inst_m <= bundle.d_sample_malicious
        assert complete_b <= summary_b and complete_b <= inst_b
        assert complete_m <= summary_m and complete_m <= inst_m

    def test_crawl_survival_shape(self, pipeline_result):
        """Malicious apps disappear from crawls far more than benign."""
        bundle = pipeline_result.bundle
        summary_b, summary_m = bundle.d_summary
        benign_coverage = len(summary_b) / len(bundle.d_sample_benign)
        malicious_coverage = len(summary_m) / len(bundle.d_sample_malicious)
        assert benign_coverage > 0.85
        assert malicious_coverage < 0.6

    def test_table1_rows_structure(self, pipeline_result):
        rows = pipeline_result.bundle.table1_rows()
        assert [name for name, *_ in rows] == [
            "D-Total", "D-Sample", "D-Summary", "D-Inst",
            "D-ProfileFeed", "D-Complete",
        ]

    def test_ground_truth_label_quality(self, pipeline_result):
        """Operational labels track the hidden truth (paper: FP <= 2.6%)."""
        bundle = pipeline_result.bundle
        truth = pipeline_result.world.truth_malicious_ids()
        mislabelled = bundle.d_sample_malicious - truth
        assert len(mislabelled) / len(bundle.d_sample_malicious) <= 0.03
        benign_mislabelled = bundle.d_sample_benign & truth
        # stealth malicious apps can sneak into the benign sample only
        # if Social-Bakers-vetted, which hackers' apps are not
        assert len(benign_mislabelled) / len(bundle.d_sample_benign) <= 0.05
