"""Tests that every experiment module runs and reports sane values.

These exercise the tables/figures machinery on the shared small world;
the benchmark suite compares the actual numbers at a larger scale.
"""

import pytest

from repro.experiments import (
    fig01_15,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig16,
    sec3,
    sec52,
    sec61,
    sec7,
    table1,
    table2,
    table3,
    table5,
    table6,
    table8,
    table9,
)
from repro.analysis.report import ExperimentReport

_SIMPLE_MODULES = [
    table1, table2, table3, table5, table6, table8, table9,
    fig03, fig04, fig05, fig06, fig07, fig08, fig09,
    fig10, fig11, fig12, fig16, sec3, sec52, sec7,
]
_COLLUSION_MODULES = [fig01_15, fig13, fig14, sec61]


@pytest.mark.parametrize(
    "module", _SIMPLE_MODULES, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
)
def test_simple_experiment_runs(module, pipeline_result):
    report = module.run(pipeline_result)
    assert isinstance(report, ExperimentReport)
    assert report.rows
    assert report.render()


@pytest.mark.parametrize(
    "module", _COLLUSION_MODULES, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
)
def test_collusion_experiment_runs(module, pipeline_result, collusion):
    report = module.run(pipeline_result, collusion)
    assert isinstance(report, ExperimentReport)
    assert report.rows


class TestExperimentSemantics:
    def test_fig05_separation(self, pipeline_result):
        fractions = fig05.field_fractions(pipeline_result)
        assert fractions["benign"]["description"] > 0.7
        assert fractions["malicious"]["description"] < 0.2

    def test_fig07_permission_gap(self, pipeline_result):
        counts = fig07.permission_counts(pipeline_result)
        malicious_single = sum(1 for c in counts["malicious"] if c == 1)
        assert malicious_single >= 0.85 * max(len(counts["malicious"]), 1)

    def test_fig12_external_gap(self, pipeline_result):
        ratios = fig12.external_ratios(pipeline_result)
        import numpy as np
        assert np.mean(ratios["malicious"]) > np.mean(ratios["benign"]) + 0.2

    def test_table2_ranked_by_volume(self, pipeline_result):
        top = table2.top_malicious_apps(pipeline_result, n=5)
        counts = [count for _id, _name, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_table9_finds_piggybacked(self, pipeline_result):
        found = {a for a, *_ in table9.piggybacked_apps(pipeline_result)}
        targets = pipeline_result.world.piggybacked_ids()
        assert found & targets

    def test_fig03_clicks_nonnegative(self, pipeline_result):
        totals = fig03.clicks_per_malicious_app(pipeline_result)
        assert totals
        assert all(v >= 0 for v in totals.values())

    def test_fig13_roles_sum(self, pipeline_result, collusion):
        report = fig13.run(pipeline_result, collusion)
        measured = report.measured_by_metric()
        total = int(measured["colluding apps"])
        assert total == len(collusion.graph)
