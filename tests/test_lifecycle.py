"""The drift lifecycle end to end: degrade, detect, retrain, roll back.

Small trajectories (few epochs, ~100 apps each) keep these fast; the
assertions are about the loop's *shape* — a frozen model degrades under
drift while the online loop recovers, a clean trajectory stays quiet,
and an injected broken canary is rolled back with the incident on the
record — not about exact accuracy values.
"""

from __future__ import annotations

import json

import pytest

from repro.core.lifecycle import (
    LifecycleConfig,
    run_drift_sweep,
    run_lifecycle,
    write_drift_metrics,
)
from repro.ecosystem.drift import DriftPlan

SEED = 2012
EPOCHS = 5
APPS = 120


def plan(drift_rate):
    return DriftPlan(
        seed=SEED, n_epochs=EPOCHS, drift_rate=drift_rate,
        apps_per_epoch=APPS,
    )


def test_clean_trajectory_stays_quiet():
    result = run_lifecycle(plan(0.0))
    assert len(result.outcomes) == EPOCHS
    assert not result.incidents
    assert not result.promotions
    assert result.detection_accuracy() == pytest.approx(1.0)
    assert all(not outcome.drift_flagged for outcome in result.outcomes)
    assert all(
        outcome.champion_version == 1 for outcome in result.outcomes
    )
    # No drift and no retrain: the static and online model are the same
    # weights, differing only through the operator's name knowledge.
    assert result.mean_accuracy("static") > 0.9


def test_drifted_trajectory_degrades_static_and_recovers_online():
    result = run_lifecycle(plan(0.5))
    first, last = result.outcomes[1], result.outcomes[-1]
    # The frozen model measurably degrades as the campaigns adapt...
    assert last.static_accuracy < first.static_accuracy
    # ...the detector notices...
    assert any(outcome.drift_flagged for outcome in result.outcomes)
    assert result.detection_accuracy() >= 0.6
    # ...and the online loop retrains and promotes its way back above.
    assert result.promotions
    assert result.outcomes[-1].champion_version > 1
    assert last.online_accuracy > last.static_accuracy
    assert result.mean_accuracy("online") >= result.mean_accuracy("static")


def test_lifecycle_is_deterministic():
    first = run_lifecycle(plan(0.5))
    second = run_lifecycle(plan(0.5))
    assert [o.as_dict() for o in first.outcomes] == [
        o.as_dict() for o in second.outcomes
    ]
    assert [r.as_dict() for r in first.drift_reports] == [
        r.as_dict() for r in second.drift_reports
    ]


def test_injected_bad_canary_is_rolled_back():
    config = LifecycleConfig(inject_bad_canary_epoch=2)
    result = run_lifecycle(plan(0.0), config)
    (incident,) = result.incidents
    assert incident.restored_version == 1
    assert "disagreement" in incident.reason
    # The champion is restored and stays restored.
    assert result.outcomes[-1].champion_version == 1
    assert not result.promotions
    # The transition is on the epoch record.
    assert any(
        outcome.transition == "rolled_back" for outcome in result.outcomes
    )


def test_reference_intensity_tracks_promotions():
    """Ground truth for the drift flag moves only when a promotion
    absorbs the drift into a new reference window."""
    result = run_lifecycle(plan(0.5))
    references = [o.reference_intensity for o in result.outcomes]
    assert references[0] == 0.0
    assert references == sorted(references)  # never rewinds
    if result.promotions:
        assert references[-1] > 0.0


def test_sweep_table_and_metrics_export(tmp_path):
    sweep = run_drift_sweep([0.0, 0.5], plan=plan(0.0))
    assert [row.drift_rate for row in sweep.rows] == [0.0, 0.5]
    table = sweep.table()
    assert table.splitlines()[0].startswith("drift_rate")
    assert len(table.splitlines()) == 3

    clean, drifted = sweep.rows
    assert clean.rollbacks == 0 and clean.promotions == 0
    assert drifted.static_accuracy < clean.static_accuracy
    assert drifted.online_accuracy >= drifted.static_accuracy

    out = tmp_path / "drift-metrics.jsonl"
    n = write_drift_metrics(out, sweep)
    lines = out.read_text().splitlines()
    assert len(lines) == n
    kinds = {json.loads(line)["kind"] for line in lines}
    assert kinds == {"epoch", "window", "summary"}
    summaries = [
        json.loads(line)
        for line in lines
        if json.loads(line)["kind"] == "summary"
    ]
    assert [s["drift_rate"] for s in summaries] == [0.0, 0.5]


def test_lifecycle_config_validation():
    with pytest.raises(ValueError):
        LifecycleConfig(retrain_on="never")
    with pytest.raises(ValueError):
        LifecycleConfig(holdout_fraction=1.0)
