"""Tests for OAuth, the install flow, the Graph API, and moderation."""

import pytest

from repro.platform.apps import AppRegistry
from repro.platform.graph_api import GraphApi, GraphApiError
from repro.platform.install import AppRemovedError, InstallationService
from repro.platform.moderation import ModerationEngine, hazard_for_survival
from repro.platform.oauth import TokenService
from repro.platform.posts import PostLog
from repro.platform.users import UserBase


@pytest.fixture()
def platform(rng):
    registry = AppRegistry(rng)
    tokens = TokenService()
    users = UserBase(100, rng)
    log = PostLog()
    installer = InstallationService(registry, tokens, users, rng)
    graph = GraphApi(registry, log)
    return registry, tokens, users, log, installer, graph


class TestOAuth:
    def test_issue_and_validate(self, platform):
        _, tokens, *_ = platform
        token = tokens.issue(user_id=1, app_id="a", scopes=("publish_stream",))
        assert tokens.validate(token.token) is token
        assert token.allows("publish_stream")
        assert not token.allows("email")

    def test_revocation(self, platform):
        _, tokens, *_ = platform
        token = tokens.issue(1, "a", ("publish_stream",))
        tokens.revoke(token.token)
        assert tokens.validate(token.token) is None

    def test_revoke_app_revokes_every_user_token(self, platform):
        _, tokens, *_ = platform
        for user in range(5):
            tokens.issue(user, "a", ("publish_stream",))
        tokens.issue(9, "b", ("publish_stream",))
        assert tokens.revoke_app("a") == 5
        assert len(tokens.tokens_of_app("a")) == 0
        assert len(tokens.tokens_of_app("b")) == 1


class TestInstallFlow:
    def test_honest_app_prompt(self, platform):
        registry, _, _, _, installer, _ = platform
        app = registry.create(name="A", developer_id="d")
        prompt = installer.visit_install_url(app.app_id)
        assert prompt.client_id == app.app_id
        assert not prompt.client_id_mismatch
        assert prompt.permissions == app.permissions

    def test_client_id_rotation(self, platform):
        registry, _, _, _, installer, _ = platform
        sibling = registry.create(name="S", developer_id="h")
        app = registry.create(
            name="A", developer_id="h", client_id_pool=(sibling.app_id,)
        )
        prompt = installer.visit_install_url(app.app_id)
        assert prompt.client_id == sibling.app_id
        assert prompt.client_id_mismatch

    def test_rotation_skips_deleted_siblings(self, platform):
        registry, _, _, _, installer, _ = platform
        sibling = registry.create(name="S", developer_id="h")
        sibling.deleted_day = 0
        app = registry.create(
            name="A", developer_id="h", client_id_pool=(sibling.app_id,)
        )
        prompt = installer.visit_install_url(app.app_id, day=5)
        assert prompt.client_id == app.app_id  # falls back to itself

    def test_removed_app_visit_fails(self, platform):
        registry, _, _, _, installer, _ = platform
        app = registry.create(name="A", developer_id="d")
        app.deleted_day = 10
        with pytest.raises(AppRemovedError):
            installer.visit_install_url(app.app_id, day=20)

    def test_accept_installs_the_client_app(self, platform):
        registry, tokens, users, _, installer, _ = platform
        sibling = registry.create(name="S", developer_id="h")
        app = registry.create(
            name="A", developer_id="h", client_id_pool=(sibling.app_id,)
        )
        prompt = installer.visit_install_url(app.app_id)
        token = installer.accept(prompt, user_id=3, day=1)
        assert users.has_installed(3, sibling.app_id)
        assert not users.has_installed(3, app.app_id)
        assert token.app_id == sibling.app_id
        assert installer.install_count(sibling.app_id) == 1


class TestGraphApi:
    def test_summary_fields(self, platform):
        registry, _, _, _, _, graph = platform
        app = registry.create(
            name="A", developer_id="d", description="desc",
            company="Co", category="Games", mau_series=(5, 10, 20),
        )
        summary = graph.summary(app.app_id)
        assert summary["name"] == "A"
        assert summary["monthly_active_users"] == 20  # latest month

    def test_summary_mau_indexed_by_crawl_day(self, platform):
        registry, _, _, _, _, graph = platform
        app = registry.create(name="A", developer_id="d", mau_series=(5, 10, 20))
        epoch = GraphApi.CRAWL_EPOCH_DAY
        assert graph.summary(app.app_id, day=epoch)["monthly_active_users"] == 5
        assert graph.summary(app.app_id, day=epoch + 35)["monthly_active_users"] == 10
        assert graph.summary(app.app_id, day=epoch + 900)["monthly_active_users"] == 20

    def test_deleted_app_returns_error(self, platform):
        registry, _, _, _, _, graph = platform
        app = registry.create(name="A", developer_id="d")
        app.deleted_day = 50
        assert graph.exists(app.app_id, day=10)
        with pytest.raises(GraphApiError):
            graph.summary(app.app_id, day=60)

    def test_unknown_app(self, platform):
        *_, graph = platform
        assert not graph.exists("0000")
        with pytest.raises(GraphApiError):
            graph.profile_feed("0000")

    def test_prompt_feed_forges_attribution(self, platform):
        registry, _, _, log, _, graph = platform
        victim = registry.create(name="FarmVille", developer_id="zynga")
        post = graph.prompt_feed(
            api_key=victim.app_id,
            user_id=7,
            message="WOW free credits",
            link="http://bit.ly/x",
            day=3,
            truth_malicious=True,
            truth_piggybacked=True,
        )
        # The post is attributed to the victim with no authentication.
        assert post.app_id == victim.app_id
        assert post.app_name == "FarmVille"
        assert post.truth_piggybacked
        assert log.post_count(victim.app_id) == 1

    def test_prompt_feed_unknown_api_key(self, platform):
        *_, graph = platform
        with pytest.raises(GraphApiError):
            graph.prompt_feed("bogus", 0, "m", None, 0)


class TestModeration:
    def test_hazard_for_survival_math(self):
        hazard = hazard_for_survival(0.5, 100)
        assert (1 - hazard) ** 100 == pytest.approx(0.5)

    def test_hazard_validation(self):
        with pytest.raises(ValueError):
            hazard_for_survival(0.0, 100)
        with pytest.raises(ValueError):
            hazard_for_survival(0.5, 0)

    def _engine(self, rng, registry, malicious=0.05, benign=0.0):
        return ModerationEngine(registry, None, rng, malicious, benign)

    def test_step_day_deletes_only_malicious_under_zero_benign_hazard(self, rng):
        registry = AppRegistry(rng)
        for index in range(50):
            registry.create(name=f"B{index}", developer_id="d")
            registry.create(name=f"M{index}", developer_id="h", truth_malicious=True)
        engine = self._engine(rng, registry, malicious=0.999, benign=0.0)
        deleted = engine.run(1, 10)
        assert deleted == 50
        assert all(not a.is_deleted() for a in registry.benign())

    def test_assign_deletion_days_matches_survival_target(self, rng):
        registry = AppRegistry(rng)
        for index in range(2000):
            registry.create(name=f"M{index}", developer_id="h", truth_malicious=True)
        hazard = hazard_for_survival(0.4, 300)
        engine = self._engine(rng, registry, malicious=hazard, benign=0.0)
        engine.assign_deletion_days(registry.all_apps(), horizon_days=10_000)
        survivors = sum(1 for a in registry.all_apps() if not a.is_deleted(300))
        assert 0.35 < survivors / 2000 < 0.45

    def test_delete_app_revokes_tokens(self, rng):
        registry = AppRegistry(rng)
        tokens = TokenService()
        app = registry.create(name="M", developer_id="h", truth_malicious=True)
        tokens.issue(1, app.app_id, ("publish_stream",))
        engine = ModerationEngine(registry, tokens, rng, 0.0, 0.0)
        engine.delete_app(app, day=5)
        assert app.is_deleted(5)
        assert tokens.tokens_of_app(app.app_id) == []
