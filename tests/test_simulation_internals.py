"""Tests for driver internals: budget allocation and the schedule."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecosystem.simulation import CrawlSchedule, _allocate


class TestAllocate:
    @settings(deadline=None)
    @given(
        n_apps=st.integers(1, 60),
        budget=st.integers(0, 5000),
        seed=st.integers(0, 100),
    )
    def test_every_app_gets_at_least_one_post(self, n_apps, budget, seed):
        rng = np.random.default_rng(seed)
        weights = rng.pareto(1.3, size=n_apps) + 1.0
        counts = _allocate(rng, weights, budget)
        assert len(counts) == n_apps
        assert counts.min() >= 1
        # The floor can only add, never remove, posts.
        assert counts.sum() >= max(budget, n_apps)

    def test_empty_weights(self, rng):
        assert len(_allocate(rng, np.zeros(0), 100)) == 0

    def test_allocation_tracks_weights(self, rng):
        weights = np.array([100.0, 1.0])
        counts = _allocate(rng, weights, 10_000)
        assert counts[0] > counts[1] * 10


class TestCrawlSchedule:
    def test_default_chronology(self):
        schedule = CrawlSchedule()
        assert (
            schedule.horizon_days
            < schedule.profilefeed_crawl_day
            < schedule.summary_crawl_day
            < schedule.inst_crawl_day
            < schedule.validation_day
        )

    def test_schedule_is_frozen(self):
        schedule = CrawlSchedule()
        with pytest.raises(AttributeError):
            schedule.horizon_days = 1
