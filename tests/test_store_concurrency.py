"""Concurrent access and crash safety of the analytics store.

Two contracts (see :mod:`repro.store.db`):

* a reader opened read-only sees only *committed* ingests while a sink
  holds a write transaction on the same file (WAL snapshot isolation);
* SIGKILL mid-ingest loses at most the open transaction — reopening the
  store rolls the torn ingest back, re-offering the same artifacts
  completes it, and the logical content (:meth:`canonical_bytes`) is
  identical to a store that was never interrupted.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.store import AnalyticsStore, census, ingest_metrics, ingest_trace

from tests.test_store import METRICS_TEXT, TRACE_TEXT

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_reader_sees_only_committed_ingests(tmp_path):
    path = tmp_path / "s.sqlite"
    trace_file = tmp_path / "trace.jsonl"
    trace_file.write_text(TRACE_TEXT)
    writer = AnalyticsStore(path)
    ingest_trace(writer, trace_file)

    reader = AnalyticsStore(path, readonly=True)
    assert [r.kind for r in census(reader)] == ["trace"]

    # a write transaction is open and has inserted rows, uncommitted
    con = writer._con
    con.execute("BEGIN IMMEDIATE")
    writer.register_ingest(con, "metrics", "open", "0" * 64, 1)
    con.execute(
        "INSERT INTO metrics VALUES(2, 0, 'counter', 'x', '{}', "
        "1.0, NULL, NULL, NULL, NULL)"
    )
    assert [r.kind for r in census(reader)] == ["trace"]

    con.commit()
    assert [r.kind for r in census(reader)] == ["trace", "metrics"]
    reader.close()
    writer.close()


# -- SIGKILL mid-ingest -------------------------------------------------------

# The victim: ingests the trace artifact (committed), then dies by real
# SIGKILL *inside* the metrics ingest's write transaction — after rows
# are inserted, before COMMIT.  The pattern of
# tests/test_checkpoint_crash.py, aimed at the store.
_VICTIM = """\
import os, signal, sys
from repro.store import AnalyticsStore, ingest_trace
from repro.store.db import content_sha256

store_path, trace_path, metrics_path = sys.argv[1:4]
store = AnalyticsStore(store_path)
ingest_trace(store, trace_path)
text = open(metrics_path).read()
con = store._con
con.execute("BEGIN IMMEDIATE")
store.register_ingest(
    con, "metrics", metrics_path, content_sha256(text), 2
)
con.execute(
    "INSERT INTO metrics VALUES(2, 0, 'counter', 'requests_total', "
    "'{}', 7.0, NULL, NULL, NULL, NULL)"
)
os.kill(os.getpid(), signal.SIGKILL)
"""


def test_sigkill_mid_ingest_then_reingest_is_logically_identical(tmp_path):
    trace_file = tmp_path / "trace.jsonl"
    trace_file.write_text(TRACE_TEXT)
    metrics_file = tmp_path / "metrics.jsonl"
    metrics_file.write_text(METRICS_TEXT)

    # control: the same two ingests, never interrupted
    control_path = tmp_path / "control.sqlite"
    with AnalyticsStore(control_path) as store:
        ingest_trace(store, trace_file)
        ingest_metrics(store, metrics_file)
        expected = store.canonical_bytes()

    victim_path = tmp_path / "victim.sqlite"
    script = tmp_path / "victim.py"
    script.write_text(_VICTIM)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(script), str(victim_path),
         str(trace_file), str(metrics_file)],
        env=env, capture_output=True, timeout=120,
    )
    assert proc.returncode == -9, proc.stderr.decode()

    # 'reboot': the torn metrics transaction rolls back; the durable
    # prefix (the trace ingest) survived
    with AnalyticsStore(victim_path) as store:
        assert [r.kind for r in census(store)] == ["trace"]
        # re-offer everything blindly, the operational norm
        assert ingest_trace(store, trace_file).skipped
        assert not ingest_metrics(store, metrics_file).skipped
        assert store.canonical_bytes() == expected

    # a second blind re-offer changes nothing, logically or physically
    before = victim_path.read_bytes()
    with AnalyticsStore(victim_path) as store:
        assert ingest_trace(store, trace_file).skipped
        assert ingest_metrics(store, metrics_file).skipped
        assert store.canonical_bytes() == expected
    assert victim_path.read_bytes() == before


def test_killed_and_control_stores_render_the_same_report(tmp_path):
    """After crash + re-ingest the *rendered* report matches too."""
    from repro.store import render_report

    trace_file = tmp_path / "trace.jsonl"
    trace_file.write_text(TRACE_TEXT)
    metrics_file = tmp_path / "metrics.jsonl"
    metrics_file.write_text(METRICS_TEXT)

    control_path = tmp_path / "control.sqlite"
    with AnalyticsStore(control_path) as store:
        ingest_trace(store, trace_file, label=str(trace_file))
        ingest_metrics(store, metrics_file, label=str(metrics_file))
        expected = render_report(store)

    victim_path = tmp_path / "victim.sqlite"
    script = tmp_path / "victim.py"
    script.write_text(_VICTIM)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(script), str(victim_path),
         str(trace_file), str(metrics_file)],
        env=env, capture_output=True, timeout=120,
    )
    assert proc.returncode == -9, proc.stderr.decode()

    with AnalyticsStore(victim_path) as store:
        ingest_trace(store, trace_file, label=str(trace_file))
        ingest_metrics(store, metrics_file, label=str(metrics_file))
        assert render_report(store) == expected
