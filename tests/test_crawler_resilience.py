"""Retry policy, circuit breaker, and resilient executor (crawler.resilience)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crawler.resilience import (
    GAVE_UP,
    OK,
    PERMANENT,
    SKIPPED,
    CircuitBreaker,
    CrawlOutcome,
    ResilientExecutor,
    RetryPolicy,
)
from repro.platform.graph_api import GraphApiError
from repro.platform.install import AppRemovedError
from repro.platform.transport import (
    RateLimitError,
    TransientServerError,
    TransportStats,
)


def executor(
    max_attempts: int = 4, seed: int = 99, **breaker_kwargs
) -> ResilientExecutor:
    stats = TransportStats()
    breakers = (
        {"summary": CircuitBreaker(**breaker_kwargs)} if breaker_kwargs else None
    )
    return ResilientExecutor(
        RetryPolicy(max_attempts=max_attempts), stats, seed=seed, breakers=breakers
    )


def scripted(*outcomes):
    """A call whose i-th invocation raises (exception) or returns (value)."""
    state = {"calls": 0}

    def fn():
        index = min(state["calls"], len(outcomes) - 1)
        state["calls"] += 1
        result = outcomes[index]
        if isinstance(result, BaseException):
            raise result
        return result

    fn.state = state
    return fn


class TestRetryPolicy:
    def test_backoff_is_full_jitter_under_exponential_cap(self):
        policy = RetryPolicy(base_delay_s=2.0, max_delay_s=60.0)
        rng = np.random.default_rng(0)
        for attempt in range(8):
            cap = min(60.0, 2.0 * 2.0**attempt)
            for _ in range(20):
                assert 0.0 <= policy.backoff(attempt, rng) <= cap

    def test_backoff_deterministic_for_a_seeded_rng(self):
        policy = RetryPolicy()
        a = [policy.backoff(i, np.random.default_rng(1)) for i in range(5)]
        b = [policy.backoff(i, np.random.default_rng(1)) for i in range(5)]
        assert a == b

    def test_rate_limit_hint_is_a_floor(self):
        policy = RetryPolicy(base_delay_s=0.001, max_delay_s=0.001)
        error = RateLimitError("app", retry_after=55.0)
        delay = policy.delay_for(error, 0, np.random.default_rng(2))
        assert delay >= 55.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_mandatory_delay_is_the_rate_limit_floor(self):
        assert RetryPolicy.mandatory_delay(
            RateLimitError("app", retry_after=42.0)
        ) == pytest.approx(42.0)
        assert RetryPolicy.mandatory_delay(TransientServerError("app")) == 0.0


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=100.0)
        for _ in range(2):
            breaker.record_failure(now_s=0.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(now_s=10.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(now_s=50.0)
        assert breaker.cooldown_remaining(now_s=50.0) == pytest.approx(60.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(now_s=0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow(now_s=100.0)  # cooldown over: one probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        # Interleaved callers at cooldown expiry: the first allow() owns
        # the half-open probe, every concurrent allow() is rejected.
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(now_s=0.0)
        assert breaker.allow(now_s=100.0)  # the probe owner
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(now_s=100.0)  # concurrent caller: rejected
        assert not breaker.allow(now_s=150.0)  # still rejected until resolved
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(now_s=150.0)  # closed again: everyone admitted
        assert breaker.allow(now_s=150.0)

    def test_failed_probe_reopens_and_restarts_the_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(now_s=0.0)
        assert breaker.allow(now_s=100.0)
        assert not breaker.allow(now_s=100.0)
        breaker.record_failure(now_s=100.0)  # the probe itself failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.cooldown_remaining(now_s=100.0) == pytest.approx(100.0)
        assert not breaker.allow(now_s=150.0)  # fresh cooldown holds
        # The next cooldown expiry grants a fresh single probe.
        assert breaker.allow(now_s=200.0)
        assert not breaker.allow(now_s=200.0)

    def test_probe_ownership_survives_snapshot_restore(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(now_s=0.0)
        assert breaker.allow(now_s=100.0)
        clone = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        clone.restore(breaker.snapshot())
        assert clone.state == CircuitBreaker.HALF_OPEN
        assert not clone.allow(now_s=100.0)  # the probe is still in flight

    def test_restore_tolerates_snapshots_without_probe_flag(self):
        # Checkpoints written before half-open became single-probe lack
        # the field; restoring them must not crash or invent a probe.
        breaker = CircuitBreaker()
        breaker.restore(
            {"state": "half_open", "consecutive_failures": 0, "opened_at": 5.0}
        )
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow(now_s=5.0)  # no phantom probe in flight

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=5, cooldown_s=100.0)
        for _ in range(5):
            breaker.record_failure(now_s=0.0)
        assert breaker.allow(now_s=200.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # A single half-open failure re-opens regardless of threshold.
        breaker.record_failure(now_s=200.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.cooldown_remaining(now_s=200.0) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestResilientExecutor:
    def test_transient_faults_recover_within_budget(self):
        ex = executor(max_attempts=4)
        fn = scripted(
            TransientServerError("app"), TransientServerError("app"), "payload"
        )
        outcome = CrawlOutcome("summary")
        result = ex.call("summary", "app", fn, outcome)
        assert result == "payload"
        assert outcome.status == OK
        assert outcome.attempts == 3
        assert outcome.faults == ["server_error", "server_error"]
        assert outcome.recovered
        assert outcome.transiently_failed
        assert ex.stats.wait_s > 0.0  # backoff was simulated
        assert outcome.elapsed_s == pytest.approx(ex.stats.elapsed_s)

    def test_budget_exhaustion_gives_up(self):
        ex = executor(max_attempts=3)
        fn = scripted(TransientServerError("app"))
        outcome = CrawlOutcome("feed")
        assert ex.call("feed", "app", fn, outcome) is None
        assert outcome.status == GAVE_UP
        assert outcome.attempts == 3
        assert not outcome.recovered

    def test_permanent_errors_are_never_retried(self):
        for error in (GraphApiError("app"), AppRemovedError("app")):
            ex = executor(max_attempts=5)
            fn = scripted(error)
            outcome = CrawlOutcome("summary")
            assert ex.call("summary", "app", fn, outcome) is None
            assert outcome.status == PERMANENT
            assert outcome.attempts == 1  # one authoritative answer suffices
            assert fn.state["calls"] == 1
            assert outcome.faults == []

    def test_rate_limit_waits_at_least_retry_after(self):
        ex = executor(max_attempts=2)
        fn = scripted(RateLimitError("app", retry_after=120.0), "payload")
        outcome = CrawlOutcome("summary")
        assert ex.call("summary", "app", fn, outcome) == "payload"
        assert ex.stats.wait_s >= 120.0

    def test_ok_sticks_across_calls_sharing_an_outcome(self):
        # The weekly summary collection funnels many requests into one
        # outcome: one success makes the collection OK even if a later
        # week gives up.
        ex = executor(max_attempts=2)
        outcome = CrawlOutcome("summary")
        assert ex.call("summary", "app", scripted("week1"), outcome) == "week1"
        assert (
            ex.call("summary", "app", scripted(TransientServerError("app")), outcome)
            is None
        )
        assert outcome.status == OK
        assert outcome.attempts == 3

    def test_permanent_sticks_over_a_later_gave_up(self):
        ex = executor(max_attempts=2)
        outcome = CrawlOutcome("summary")
        ex.call("summary", "app", scripted(GraphApiError("app")), outcome)
        ex.call("summary", "app", scripted(TransientServerError("app")), outcome)
        assert outcome.status == PERMANENT

    def test_deadline_aborts_instead_of_sleeping_past_it(self):
        ex = executor(max_attempts=10)
        fn = scripted(RateLimitError("app", retry_after=500.0))
        outcome = CrawlOutcome("summary")
        result = ex.call(
            "summary", "app", fn, outcome, deadline_at=ex.stats.elapsed_s + 60.0
        )
        assert result is None
        assert outcome.status == GAVE_UP
        # It gave up rather than paying the 500 s retry-after.
        assert ex.stats.wait_s < 500.0

    def test_hopeless_rate_limit_gives_up_without_sleeping(self):
        # The retry-after hint alone already overruns the deadline: no
        # jitter draw can shrink a rate-limit floor, so the executor
        # must give up on the spot instead of sleeping toward a miss.
        ex = executor(max_attempts=5)
        fn = scripted(RateLimitError("app", retry_after=500.0), "payload")
        outcome = CrawlOutcome("summary")
        result = ex.call(
            "summary", "app", fn, outcome, deadline_at=ex.stats.elapsed_s + 60.0
        )
        assert result is None
        assert outcome.status == GAVE_UP
        assert outcome.attempts == 1  # no doomed second attempt
        assert fn.state["calls"] == 1
        assert ex.stats.wait_s == 0.0  # and, critically, no sleep at all

    def test_rate_limit_within_the_deadline_still_waits_and_retries(self):
        ex = executor(max_attempts=2)
        fn = scripted(RateLimitError("app", retry_after=30.0), "payload")
        outcome = CrawlOutcome("summary")
        result = ex.call(
            "summary", "app", fn, outcome, deadline_at=ex.stats.elapsed_s + 600.0
        )
        assert result == "payload"
        assert outcome.status == OK
        assert ex.stats.wait_s >= 30.0

    def test_half_open_concurrent_caller_gets_breaker_open_outcome(self):
        # A service burst at cooldown expiry: caller one owns the probe;
        # caller two must be turned away without touching the endpoint.
        ex = executor(max_attempts=1, failure_threshold=1, cooldown_s=50.0)
        ex.call(
            "summary", "a", scripted(TransientServerError("a")),
            CrawlOutcome("summary"),
        )
        breaker = ex.breaker("summary")
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow(ex.stats.elapsed_s + 50.0)  # caller one probes
        ex.stats.add_wait(50.0)
        untouched = scripted("payload")
        outcome = CrawlOutcome("summary")
        assert ex.call("summary", "b", untouched, outcome) is None
        assert outcome.status == GAVE_UP
        assert outcome.attempts == 0
        assert untouched.state["calls"] == 0  # the endpoint was never hit
        # The probe resolving re-admits traffic.
        breaker.record_success()
        assert ex.call(
            "summary", "c", scripted("payload"), CrawlOutcome("summary")
        ) == "payload"

    def test_jitter_is_deterministic_per_seed(self):
        waits = []
        for _ in range(2):
            ex = executor(max_attempts=4, seed=31)
            outcome = CrawlOutcome("feed")
            ex.call("feed", "app", scripted(TransientServerError("app")), outcome)
            waits.append(ex.stats.wait_s)
        assert waits[0] == waits[1]
        other = executor(max_attempts=4, seed=32)
        other.call(
            "feed", "app", scripted(TransientServerError("app")), CrawlOutcome("feed")
        )
        assert other.stats.wait_s != waits[0]

    def test_breaker_opens_and_cooldown_is_waited_out(self):
        ex = executor(max_attempts=1, failure_threshold=2, cooldown_s=300.0)
        for app in ("a", "b"):
            outcome = CrawlOutcome("summary")
            ex.call("summary", app, scripted(TransientServerError(app)), outcome)
        breaker = ex.breaker("summary")
        assert breaker.state == CircuitBreaker.OPEN
        # The next call waits out the cooldown, then probes half-open —
        # and the probe succeeding closes the breaker.
        waited_before = ex.stats.wait_s
        outcome = CrawlOutcome("summary")
        assert ex.call("summary", "c", scripted("payload"), outcome) == "payload"
        assert ex.stats.wait_s - waited_before >= 300.0
        assert breaker.state == CircuitBreaker.CLOSED
        assert outcome.status == OK

    def test_authoritative_answers_count_as_endpoint_health(self):
        ex = executor(max_attempts=1, failure_threshold=2, cooldown_s=300.0)
        ex.call(
            "summary", "a", scripted(TransientServerError("a")), CrawlOutcome("summary")
        )
        # An authoritative "removed" proves the endpoint answered.
        ex.call(
            "summary", "b", scripted(GraphApiError("b")), CrawlOutcome("summary")
        )
        ex.call(
            "summary", "c", scripted(TransientServerError("c")), CrawlOutcome("summary")
        )
        assert ex.breaker("summary").state == CircuitBreaker.CLOSED

    def test_outcome_defaults(self):
        outcome = CrawlOutcome("install")
        assert outcome.status == SKIPPED
        assert not outcome.recovered
        assert not outcome.transiently_failed
