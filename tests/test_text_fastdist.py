"""Exactness proofs for the fast name-similarity kernel.

Every routine in :mod:`repro.text.fastdist` is an *optimisation*, never
an approximation: the Myers bit-parallel Levenshtein, the banded
bounded OSA, and the pruned ``similar`` predicate must agree with the
naive dynamic programs in :mod:`repro.text.editdist` on **every** input
— including multi-byte unicode, empty strings, and threshold edge
cases.  Hypothesis drives the comparison over random text; the
clustering equivalence (fast kernel vs naive kernel, byte-identical
output) is covered both here on random corpora and at scale in
``benchmarks/``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.text.clustering import cluster_names
from repro.text.editdist import damerau_levenshtein, levenshtein, name_similarity
from repro.text.fastdist import (
    bounded_osa,
    char_signature,
    edit_limit,
    fast_damerau_levenshtein,
    myers_levenshtein,
    similar,
)

# Mixed-script text: ascii, latin-1, CJK, and astral-plane emoji, so the
# 64-bucket signatures and the bit-parallel kernel see real unicode.
alphabet = st.sampled_from("abcdeABC 0129_-áßñ中文日本語🎣🎮💰")
short_text = st.text(alphabet=alphabet, max_size=20)
word_text = st.text(alphabet=alphabet, max_size=70)
thresholds = st.sampled_from((0.5, 0.7, 0.8, 0.9, 0.95, 1.0))


@given(short_text, short_text)
def test_fast_damerau_levenshtein_matches_naive(a, b):
    assert fast_damerau_levenshtein(a, b) == damerau_levenshtein(a, b)


@given(word_text, word_text)
def test_myers_matches_naive_levenshtein(a, b):
    if min(len(a), len(b)) > 64:
        return  # contract: the shorter string must fit one word
    assert myers_levenshtein(a, b) == levenshtein(a, b)


def test_myers_rejects_patterns_over_one_word():
    with pytest.raises(ValueError):
        myers_levenshtein("x" * 65, "y" * 70)


@given(short_text, short_text, st.integers(min_value=0, max_value=25))
def test_bounded_osa_exact_within_limit(a, b, limit):
    distance = damerau_levenshtein(a, b)
    bounded = bounded_osa(a, b, limit)
    if distance <= limit:
        assert bounded == distance
    else:
        assert bounded > limit


@given(short_text, short_text, thresholds)
def test_similar_matches_naive_threshold_predicate(a, b, threshold):
    assert similar(a, b, threshold) == (name_similarity(a, b) >= threshold)


@given(short_text)
def test_char_signature_deterministic_and_subset_consistent(name):
    signature = char_signature(name)
    assert signature == char_signature(name)
    # every character's bucket must be present in the signature
    for ch in name:
        assert signature & (1 << (ord(ch) & 63))


def test_edit_limit_is_the_exact_threshold_boundary():
    """d <= edit_limit(n, t)  <=>  the naive float predicate accepts d."""
    for longest in range(1, 80):
        for threshold in (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95, 0.99, 1.0):
            limit = edit_limit(longest, threshold)
            for distance in range(longest + 2):
                accepts = 1.0 - distance / longest >= threshold
                assert (distance <= limit) == accepts, (
                    longest, threshold, distance, limit
                )


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.text(alphabet=alphabet, max_size=12), max_size=40),
    thresholds,
)
def test_cluster_names_fast_equals_naive(names, threshold):
    fast = cluster_names(names, threshold, kernel="fast")
    naive = cluster_names(names, threshold, kernel="naive")
    assert fast.clusters == naive.clusters
    assert fast.threshold == naive.threshold


def test_cluster_names_rejects_unknown_kernel():
    with pytest.raises(ValueError):
        cluster_names(["a"], 0.8, kernel="turbo")
