"""The fault-injecting transport layer (platform.transport).

Covers the error taxonomy, the deterministic stateless fault plan,
per-kind injection behaviour (rate limit / 5xx / timeout / truncate /
vanish), latency accounting, and the strict-no-op guarantee of a
disabled plan.
"""

from __future__ import annotations

import pytest

from repro.config import ScaleConfig
from repro.crawler.crawler import AppCrawler
from repro.ecosystem.simulation import run_simulation
from repro.platform.graph_api import GraphApiError
from repro.platform.install import AppRemovedError
from repro.platform.transport import (
    DirectTransport,
    FaultPlan,
    FaultyTransport,
    RateLimitError,
    RequestTimeoutError,
    TransientGraphApiError,
    TransientServerError,
    TransportStats,
)

WORLD_SEED = 98765


@pytest.fixture(scope="module")
def small_world():
    """A private world: transport tests consume installer RNG draws."""
    return run_simulation(ScaleConfig(scale=0.01, master_seed=WORLD_SEED))


def only(kind: str, fault_rate: float = 0.9, **extra) -> FaultPlan:
    """A plan that injects exactly one fault kind."""
    weights = {
        "rate_limit_weight": 0.0,
        "server_error_weight": 0.0,
        "timeout_weight": 0.0,
        "truncate_weight": 0.0,
        "vanish_weight": 0.0,
        f"{kind}_weight": 1.0,
    }
    return FaultPlan(fault_rate=fault_rate, seed=7, **weights, **extra)


def alive_app_id(world, *, crawlable: bool = False) -> str:
    for app in sorted(world.registry.all_apps(), key=lambda a: a.app_id):
        if app.is_deleted():
            continue
        if crawlable and not app.install_flow_crawlable:
            continue
        return app.app_id
    raise AssertionError("no live app in the test world")


class TestErrorTaxonomy:
    def test_transient_errors_are_graph_api_errors(self):
        # A crawler catching the permanent base class by accident would
        # swallow retryable faults — the subclass relation is the hook
        # that makes "catch transient first" possible at all.
        for cls in (RateLimitError, TransientServerError, RequestTimeoutError):
            assert issubclass(cls, TransientGraphApiError)
            assert issubclass(cls, GraphApiError)

    def test_kind_tags(self):
        assert RateLimitError("a", retry_after=30.0).kind == "rate_limit"
        assert TransientServerError("a").kind == "server_error"
        assert RequestTimeoutError("a", elapsed=30.0).kind == "timeout"

    def test_rate_limit_carries_retry_after(self):
        error = RateLimitError("app", retry_after=42.5)
        assert error.retry_after == 42.5
        assert error.app_id == "app"

    def test_exports(self):
        import repro.platform as platform

        for name in (
            "RateLimitError",
            "TransientServerError",
            "TransientGraphApiError",
            "FaultyTransport",
            "FaultPlan",
        ):
            assert hasattr(platform, name)


class TestFaultPlan:
    def test_disabled_plan_never_draws(self):
        plan = FaultPlan(fault_rate=0.0)
        assert plan.disabled
        assert all(
            plan.draw("summary", f"app{i}", j) is None
            for i in range(20)
            for j in range(5)
        )

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(fault_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(fault_rate=-0.1)

    def test_draws_are_stateless_and_deterministic(self):
        plan = FaultPlan(fault_rate=0.5, seed=11)
        first = [plan.draw("summary", "app1", i) for i in range(50)]
        # Interleaving draws for other apps/endpoints changes nothing.
        for i in range(50):
            plan.draw("feed", "app2", i)
        second = [plan.draw("summary", "app1", i) for i in range(50)]
        assert first == second
        assert any(fault is not None for fault in first)

    def test_seed_changes_the_plan(self):
        a = FaultPlan(fault_rate=0.5, seed=1)
        b = FaultPlan(fault_rate=0.5, seed=2)
        draws_a = [a.draw("summary", "app", i) for i in range(100)]
        draws_b = [b.draw("summary", "app", i) for i in range(100)]
        assert draws_a != draws_b

    def test_truncate_only_applies_to_feeds(self):
        plan = FaultPlan(fault_rate=0.9, seed=3)
        kinds = {
            fault.kind
            for endpoint in ("summary", "install")
            for i in range(200)
            if (fault := plan.draw(endpoint, "app", i)) is not None
        }
        assert "truncate" not in kinds
        feed_kinds = {
            fault.kind
            for i in range(300)
            if (fault := plan.draw("feed", "app", i)) is not None
        }
        assert "truncate" in feed_kinds

    def test_fault_mix_covers_all_kinds(self):
        plan = FaultPlan(fault_rate=0.9, seed=5)
        kinds = {
            fault.kind
            for i in range(500)
            if (fault := plan.draw("feed", "app", i)) is not None
        }
        assert kinds == {
            "rate_limit", "server_error", "timeout", "truncate", "vanish"
        }

    def test_rate_limit_retry_after_within_range(self):
        plan = only("rate_limit", retry_after_range=(10.0, 20.0))
        for i in range(50):
            fault = plan.draw("summary", "app", i)
            if fault is not None:
                assert 10.0 <= fault.retry_after <= 20.0


class TestDirectTransport:
    def test_latency_accounting(self, small_world):
        app_id = alive_app_id(small_world)
        transport = DirectTransport(
            small_world.graph_api, small_world.installer, base_latency_s=0.5
        )
        transport.summary(app_id)
        transport.profile_feed(app_id)
        assert transport.stats.requests == 2
        assert transport.stats.service_s == pytest.approx(1.0)
        assert transport.stats.wait_s == 0.0
        assert transport.stats.elapsed_s == pytest.approx(1.0)
        assert transport.stats.fault_count() == 0


class TestFaultyTransport:
    def expect(self, transport, call, error_type, tries: int = 60):
        """Call until the plan injects *error_type*; return the error."""
        for _ in range(tries):
            try:
                call()
            except error_type as error:
                return error
        raise AssertionError(f"{error_type.__name__} never injected")

    def test_rate_limit_injection(self, small_world):
        app_id = alive_app_id(small_world)
        transport = FaultyTransport(
            small_world.graph_api, small_world.installer, only("rate_limit")
        )
        error = self.expect(
            transport, lambda: transport.summary(app_id), RateLimitError
        )
        low, high = transport.plan.retry_after_range
        assert low <= error.retry_after <= high
        assert transport.stats.injected["rate_limit"] >= 1

    def test_server_error_injection(self, small_world):
        app_id = alive_app_id(small_world)
        transport = FaultyTransport(
            small_world.graph_api, small_world.installer, only("server_error")
        )
        self.expect(
            transport, lambda: transport.summary(app_id), TransientServerError
        )

    def test_timeout_costs_the_full_timeout(self, small_world):
        app_id = alive_app_id(small_world)
        transport = FaultyTransport(
            small_world.graph_api,
            small_world.installer,
            only("timeout", timeout_s=30.0),
        )
        before = transport.stats.service_s
        error = self.expect(
            transport, lambda: transport.summary(app_id), RequestTimeoutError
        )
        assert error.elapsed == 30.0
        # At least one timeout was paid in full simulated latency.
        assert transport.stats.service_s - before >= 30.0

    def test_truncated_feed_is_shorter_but_nonempty(self, small_world):
        # Find an app with a feed long enough to observe truncation.
        app_id = None
        for app in sorted(small_world.registry.all_apps(), key=lambda a: a.app_id):
            if not app.is_deleted() and len(
                small_world.graph_api.profile_feed(app.app_id)
            ) >= 5:
                app_id = app.app_id
                break
        assert app_id is not None, "no app with a long feed in the test world"
        full = small_world.graph_api.profile_feed(app_id)
        transport = FaultyTransport(
            small_world.graph_api, small_world.installer, only("truncate")
        )
        truncated = None
        for _ in range(60):
            feed = transport.profile_feed(app_id)
            if len(feed) < len(full):
                truncated = feed
                break
        assert truncated is not None
        assert 1 <= len(truncated) < len(full)
        assert truncated == full[: len(truncated)]
        assert transport.stats.truncated_feeds >= 1

    def test_vanish_is_permanent_for_every_endpoint(self, small_world):
        app_id = alive_app_id(small_world, crawlable=True)
        transport = FaultyTransport(
            small_world.graph_api, small_world.installer, only("vanish")
        )
        error = self.expect(
            transport, lambda: transport.summary(app_id), GraphApiError
        )
        assert not isinstance(error, TransientGraphApiError)
        assert app_id in transport.stats.vanished
        # From now on, every query about the app fails authoritatively.
        with pytest.raises(GraphApiError):
            transport.summary(app_id)
        with pytest.raises(GraphApiError):
            transport.profile_feed(app_id)
        with pytest.raises(AppRemovedError):
            transport.visit_install_url(app_id)

    def test_disabled_plan_crawls_identically_to_direct(self):
        # Two same-seed worlds (install crawls consume installer RNG, so
        # a shared world would not see identical draw sequences).
        config = ScaleConfig(scale=0.01, master_seed=WORLD_SEED)
        world_direct = run_simulation(config)
        world_faulty = run_simulation(
            ScaleConfig(scale=0.01, master_seed=WORLD_SEED)
        )
        app_ids = sorted(
            a.app_id for a in world_direct.registry.all_apps()
        )[:8]
        direct = AppCrawler(world_direct).crawl_many(app_ids)
        faulty_transport = FaultyTransport(
            world_faulty.graph_api,
            world_faulty.installer,
            FaultPlan(fault_rate=0.0),
        )
        faulty = AppCrawler(
            world_faulty, transport=faulty_transport
        ).crawl_many(app_ids)
        for app_id in app_ids:
            a, b = direct[app_id], faulty[app_id]
            assert (a.summary_ok, a.feed_ok, a.inst_ok) == (
                b.summary_ok, b.feed_ok, b.inst_ok
            )
            assert a.name == b.name
            assert a.mau_observations == b.mau_observations
            assert a.profile_posts == b.profile_posts
            assert a.permissions == b.permissions
            assert a.observed_client_id == b.observed_client_id
            assert a.redirect_uri == b.redirect_uri
            statuses_a = {c: o.status for c, o in a.outcomes.items()}
            statuses_b = {c: o.status for c, o in b.outcomes.items()}
            assert statuses_a == statuses_b
        assert faulty_transport.stats.fault_count() == 0

    def test_stats_shared_with_injection(self, small_world):
        app_id = alive_app_id(small_world)
        stats = TransportStats()
        transport = FaultyTransport(
            small_world.graph_api,
            small_world.installer,
            only("server_error", fault_rate=0.5),
            stats=stats,
        )
        for _ in range(20):
            try:
                transport.summary(app_id)
            except TransientServerError:
                pass
        assert stats.requests == 20
        assert 0 < stats.injected["server_error"] < 20
        # Errors return faster than successful requests.
        successes = 20 - stats.injected["server_error"]
        expected = (
            successes * transport.plan.base_latency_s
            + stats.injected["server_error"] * transport.plan.error_latency_s
        )
        assert stats.service_s == pytest.approx(expected)


class TestTransportStatsThreadSafety:
    def test_concurrent_mutation_loses_no_updates(self):
        # The stats object is the service's shared clock; hammer it from
        # several threads and check the counters balance exactly.
        import threading

        stats = TransportStats()
        n_threads, n_ops = 8, 500

        def worker(index: int) -> None:
            for _ in range(n_ops):
                stats.add_request()
                stats.add_service(0.25)
                stats.add_wait(0.5)
                stats.add_fault("server_error")
                stats.add_vanished(f"app-{index}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = n_threads * n_ops
        assert stats.requests == total
        assert stats.injected["server_error"] == total
        assert stats.service_s == pytest.approx(0.25 * total)
        assert stats.wait_s == pytest.approx(0.5 * total)
        assert stats.elapsed_s == pytest.approx(0.75 * total)
        assert len(stats.vanished) == n_threads

    def test_snapshot_is_consistent_under_concurrent_writes(self):
        import threading

        stats = TransportStats()
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                # service and wait move together; a torn snapshot would
                # show them out of step.
                stats.add_service(1.0)
                stats.add_wait(1.0)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                image = stats.snapshot()
                assert image["service_s"] >= 0.0
                assert image["wait_s"] >= 0.0
                clone = TransportStats()
                clone.restore(image)
                assert clone.elapsed_s == pytest.approx(
                    image["service_s"] + image["wait_s"]
                )
        finally:
            stop.set()
            thread.join()
