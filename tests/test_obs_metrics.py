"""The metrics registry: bounded histograms, canonical dumps, scraping.

Histograms must be fixed-bucket (memory O(series), never O(samples))
with Prometheus ``le`` boundary semantics; exports must be byte-stable
regardless of recording order; and any component honouring the uniform
``snapshot() -> dict`` contract must fold into gauges without an
adapter — pinned here against the three real implementations.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import DEFAULT_SECONDS_EDGES, Histogram, MetricsRegistry
from repro.platform.transport import TransportStats
from repro.service import INTERACTIVE, AdmissionQueue, ScoreRequest, VerdictCache


class TestHistogram:
    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_value_on_an_edge_falls_in_that_bucket(self):
        # Prometheus ``le`` semantics: the bucket is value <= edge.
        h = Histogram((1.0, 5.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]
        h.observe(1.0000001)
        assert h.counts == [1, 1, 0]

    def test_overflow_lands_in_the_inf_bucket(self):
        h = Histogram((1.0, 5.0))
        h.observe(100.0)
        assert h.counts == [0, 0, 1]
        assert h.cumulative() == [0, 0, 1]

    def test_bucket_count_is_fixed_at_construction(self):
        h = Histogram(DEFAULT_SECONDS_EDGES)
        for value in range(10_000):
            h.observe(float(value))
        assert len(h.counts) == len(DEFAULT_SECONDS_EDGES) + 1
        assert h.count == 10_000
        assert h.cumulative()[-1] == 10_000

    def test_sum_and_count_track_samples(self):
        h = Histogram((10.0,))
        h.observe(2.0)
        h.observe(3.5)
        assert h.total == pytest.approx(5.5)
        assert h.count == 2


class TestRegistry:
    def test_counters_accumulate_per_label_set(self):
        m = MetricsRegistry()
        m.count("faults_total", kind="timeout")
        m.count("faults_total", kind="timeout")
        m.count("faults_total", kind="vanish")
        assert m.counter_value("faults_total", kind="timeout") == 2.0
        assert m.counter_value("faults_total", kind="vanish") == 1.0
        assert m.counter_value("faults_total", kind="absent") == 0.0

    def test_gauges_overwrite(self):
        m = MetricsRegistry()
        m.gauge("depth", 3.0)
        m.gauge("depth", 7.0)
        assert m.gauge_value("depth") == 7.0
        assert m.gauge_value("missing") is None

    def test_observe_uses_default_then_custom_edges(self):
        m = MetricsRegistry()
        m.observe("latency_seconds", 0.3)
        assert m.histogram_of("latency_seconds").edges == DEFAULT_SECONDS_EDGES
        m.observe("line_bytes", 2048.0, edges=(1024.0, 4096.0))
        assert m.histogram_of("line_bytes").edges == (1024.0, 4096.0)
        assert m.histogram_of("line_bytes").counts == [0, 1, 0]

    def test_jsonl_is_byte_stable_across_recording_orders(self):
        def record(m, order):
            for name, labels in order:
                m.count(name, **labels)
            m.gauge("depth", 4.0)
            m.observe("latency_seconds", 2.0)

        series = [
            ("faults_total", {"kind": "timeout"}),
            ("faults_total", {"kind": "vanish"}),
            ("requests_total", {}),
        ]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        record(forward, series)
        record(backward, list(reversed(series)))
        assert forward.to_jsonl() == backward.to_jsonl()
        for line in forward.to_jsonl().splitlines():
            assert line == json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            )

    def test_prometheus_dump_shapes(self):
        m = MetricsRegistry()
        m.count("requests_total", endpoint="feed")
        m.gauge("queue_depth", 5.0)
        m.observe("latency_seconds", 0.4, edges=(0.5, 1.0))
        text = m.to_prometheus()
        assert 'requests_total{endpoint="feed"} 1' in text
        assert "queue_depth 5" in text
        assert 'latency_seconds_bucket{le="0.5"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_sum 0.4" in text
        assert "latency_seconds_count 1" in text

    def test_export_writes_both_formats_atomically(self, tmp_path):
        m = MetricsRegistry()
        m.count("requests_total")
        written = m.export(
            jsonl_path=tmp_path / "m.jsonl",
            prometheus_path=tmp_path / "m.prom",
        )
        assert len(written) == 2
        assert (tmp_path / "m.jsonl").read_text() == m.to_jsonl()
        assert (tmp_path / "m.prom").read_text() == m.to_prometheus()
        assert not list(tmp_path.glob("*.tmp"))  # no droppings


class TestUniformSnapshotScrape:
    """The three real snapshot() components fold into gauges unadapted."""

    def test_admission_queue(self):
        queue = AdmissionQueue(max_depth=2)
        for sequence in range(3):
            queue.offer(
                ScoreRequest(
                    app_id=f"app{sequence}",
                    arrival_s=0.0,
                    deadline_s=60.0,
                    priority=INTERACTIVE,
                    sequence=sequence,
                )
            )
        m = MetricsRegistry()
        m.scrape("admission", queue.snapshot())
        assert m.gauge_value("admission_depth") == 2.0
        assert m.gauge_value("admission_max_depth") == 2.0
        assert m.gauge_value("admission_offered", key=INTERACTIVE) == 3.0
        assert m.gauge_value("admission_shed", key=INTERACTIVE) == 1.0
        assert m.gauge_value("admission_total_shed") == 1.0

    def test_verdict_cache(self):
        cache = VerdictCache()
        cache.lookup("missing", now_s=0.0)
        m = MetricsRegistry()
        m.scrape("cache", cache.snapshot())
        assert m.gauge_value("cache_entries") == 0.0
        assert m.gauge_value("cache_misses") == 1.0
        assert m.gauge_value("cache_hit_rate") == 0.0

    def test_transport_stats(self):
        stats = TransportStats()
        stats.add_service(1.5)
        stats.injected["timeout"] += 2
        stats.vanished.add("app1")
        m = MetricsRegistry()
        m.scrape("transport", stats.snapshot())
        assert m.gauge_value("transport_service_s") == 1.5
        assert m.gauge_value("transport_injected", key="timeout") == 2.0
        # lists collapse to their length
        assert m.gauge_value("transport_vanished") == 1.0
