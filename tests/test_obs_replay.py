"""Trace replay and the ``repro obs`` subcommand.

The replay works from the trace file alone — no live tracer — so these
tests build small traces, export them, and assert the rendered tree,
the summary tallies, and the CLI wiring (including export flags on a
real command) behave as documented.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs import (
    Tracer,
    load_trace,
    render_summary,
    render_tree,
    walk_events,
    walk_spans,
)


@pytest.fixture()
def trace_path(tmp_path):
    tracer = Tracer()
    with tracer.span("crawl.app", key="app1", t=0.0, degraded=True) as span:
        with tracer.span("crawl.summary", key="app1", t=0.0) as child:
            tracer.event("retry.fault", t=0.1, kind="timeout", attempt=0)
            tracer.event(
                "breaker.transition", t=0.2,
                from_state="closed", to_state="open",
            )
            child.end(0.3)
        span.end(0.4)
    with tracer.span(
        "serve.request", key="000001", category="serve",
        t=5.0, rung="lite",
    ) as span:
        span.end(6.0)
    return tracer.export(tmp_path / "trace.jsonl")


class TestLoadTrace:
    def test_roundtrip_and_walks(self, trace_path):
        roots = load_trace(trace_path)
        assert [r["name"] for r in roots] == ["crawl.app", "serve.request"]
        assert [s["name"] for s in walk_spans(roots)] == [
            "crawl.app", "crawl.summary", "serve.request",
        ]
        assert [
            (span["name"], event["name"])
            for span, event in walk_events(roots)
        ] == [
            ("crawl.summary", "retry.fault"),
            ("crawl.summary", "breaker.transition"),
        ]

    def test_bad_lines_are_loud(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "key": "a"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(path)
        path.write_text('["a", "list"]\n')
        with pytest.raises(ValueError, match="not a span object"):
            load_trace(path)


class TestRenderTree:
    def test_tree_nests_children_and_events(self, trace_path):
        tree = render_tree(load_trace(trace_path))
        lines = tree.splitlines()
        assert lines[0].startswith("crawl.app [app1] t=0.00..0.40s")
        assert "degraded=True" in lines[0]
        assert lines[1].startswith("  crawl.summary")
        assert "· retry.fault t=0.10s" in tree
        assert "from_state=closed to_state=open" in tree

    def test_category_key_and_limit_filters(self, trace_path):
        roots = load_trace(trace_path)
        assert "serve.request" not in render_tree(roots, category="crawl")
        assert "crawl.app" not in render_tree(roots, key="0000")
        limited = render_tree(roots, limit=1)
        assert "(1 more root spans)" in limited
        assert render_tree(roots, category="absent") == "(no spans matched)"


class TestRenderSummary:
    def test_tallies_spans_events_faults_transitions_rungs(self, trace_path):
        summary = render_summary(load_trace(trace_path))
        assert "crawl.app" in summary and "crawl.summary" in summary
        assert "retry.fault" in summary
        assert "fault kinds: timeout=1" in summary
        assert "breaker transitions: closed->open=1" in summary
        assert "ladder rungs: lite=1" in summary

    def test_root_placeholder_spans_are_not_tallied(self, tmp_path):
        tracer = Tracer()
        tracer.event("schedule.commit", category="schedule", app_id="a")
        summary = render_summary(
            load_trace(tracer.export(tmp_path / "t.jsonl"))
        )
        assert "_root" not in summary
        assert "schedule.commit" in summary


class TestCli:
    def test_obs_summary_and_tree(self, trace_path, capsys):
        assert main(["obs", str(trace_path)]) == 0
        assert "fault kinds: timeout=1" in capsys.readouterr().out
        assert main(["obs", str(trace_path), "--tree", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "crawl.app [app1]" in out and "more root spans" in out

    def test_trace_and_metrics_flags_on_a_real_command(self, tmp_path, capsys):
        trace = tmp_path / "deep" / "trace.jsonl"
        metrics = tmp_path / "deep" / "metrics.jsonl"
        code = main([
            "--scale", "0.01", "--fault-rate", "0.2",
            "--trace", str(trace), "--metrics", str(metrics),
            "simulate",
        ])
        assert code == 0
        # simulate does no crawling — the exports exist but are empty,
        # which is itself the no-op-by-default contract at work.
        assert trace.exists() and metrics.exists()
        assert metrics.with_suffix(".prom").exists()
        err = capsys.readouterr().err
        assert "trace:" in err and "metrics:" in err
