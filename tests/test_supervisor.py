"""The multi-process shard supervisor's fault-tolerance contract.

The supervisor's promise is stronger than the thread scheduler's: the
crawl's records, transport accounting, breaker end states, installer
RNG position, and export bytes must be identical to the sequential
``crawl_many`` not only for any process count but under any injected
worker fault — SIGKILL mid-shard, nonzero exit, a torn shard journal,
a hang past the heartbeat deadline, a restart budget driven to
exhaustion (reassignment rung), and every worker dying always (inline
fallback rung).  These tests inject each fault deterministically via
:class:`WorkerChaos` and compare every observable bit for bit.
"""

from __future__ import annotations

import logging
import pickle

import pytest

from repro.config import ScaleConfig
from repro.crawler.checkpoint import CrawlJournal, record_to_jsonable
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.crawler.scheduler import CrawlScheduler
from repro.crawler.supervisor import (
    ALL_SHARDS,
    CHAOS_ENV,
    EXIT,
    HANG,
    KILL,
    TORN,
    ShardJournal,
    ShardSupervisor,
    WorkerChaos,
)
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper
from repro.platform.transport import TransportStats

from tests.conftest import TEST_SCALE, TEST_SEED

FAULT_RATE = 0.2
#: generous wall-clock deadline for tests that must NOT trip it
NO_HANG_S = 60.0


@pytest.fixture(scope="module")
def crawl_world():
    """One faulted world with its D-Sample attached."""
    world = run_simulation(
        ScaleConfig(scale=TEST_SCALE, master_seed=TEST_SEED, fault_rate=FAULT_RATE)
    )
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    bundle = DatasetBuilder(world, report).build(crawl=False)
    return world, sorted(bundle.d_sample)


@pytest.fixture()
def pristine(crawl_world):
    """Restore the installer RNG (the only world state a crawl consumes)."""
    world, sample = crawl_world
    state = world.installer.rng_state()
    yield world, sample
    world.installer.restore_rng_state(state)


def _observables(world, crawler, records):
    """Every externally visible consequence of a crawl, comparable."""
    return {
        "records": {a: record_to_jsonable(r) for a, r in sorted(records.items())},
        "stats": crawler.stats.snapshot(),
        "state": crawler.snapshot_state(),
        "installer_rng": world.installer.rng_state(),
    }


def _sequential(world, apps):
    state = world.installer.rng_state()
    crawler = make_crawler(world)
    observables = _observables(world, crawler, crawler.crawl_many(apps))
    world.installer.restore_rng_state(state)
    return observables


def _supervised(world, apps, **kwargs):
    crawler = make_crawler(world)
    kwargs.setdefault("heartbeat_timeout_s", NO_HANG_S)
    supervisor = ShardSupervisor(crawler, **kwargs)
    records = supervisor.crawl(apps)
    return _observables(world, crawler, records), supervisor


# -- WorkerChaos -------------------------------------------------------------


class TestWorkerChaos:
    def test_fires_only_on_its_target(self):
        chaos = WorkerChaos(mode=KILL, shard=1, app_index=2)
        assert chaos.due(shard=1, incarnation=0, app_index=2)
        assert not chaos.due(shard=0, incarnation=0, app_index=2)
        assert not chaos.due(shard=1, incarnation=0, app_index=1)
        # replacements are spared unless the fault is persistent
        assert not chaos.due(shard=1, incarnation=1, app_index=2)

    def test_persistent_fires_every_incarnation(self):
        chaos = WorkerChaos(mode=KILL, shard=0, app_index=0, persistent=True)
        assert chaos.due(shard=0, incarnation=0, app_index=0)
        assert chaos.due(shard=0, incarnation=3, app_index=0)

    def test_all_shards_wildcard(self):
        chaos = WorkerChaos(mode=EXIT, shard=ALL_SHARDS, app_index=0)
        assert chaos.due(shard=0, incarnation=0, app_index=0)
        assert chaos.due(shard=7, incarnation=0, app_index=0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="chaos mode"):
            WorkerChaos(mode="meteor", shard=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert WorkerChaos.from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "kill:1:2")
        assert WorkerChaos.from_env() == WorkerChaos(
            mode=KILL, shard=1, app_index=2
        )
        monkeypatch.setenv(CHAOS_ENV, "hang:*:0:persistent")
        assert WorkerChaos.from_env() == WorkerChaos(
            mode=HANG, shard=ALL_SHARDS, app_index=0, persistent=True
        )
        monkeypatch.setenv(CHAOS_ENV, "garbled")
        with pytest.raises(ValueError, match=CHAOS_ENV):
            WorkerChaos.from_env()


# -- ShardJournal ------------------------------------------------------------


class TestShardJournal:
    def _speculations(self, pristine, n):
        world, sample = pristine
        scheduler = CrawlScheduler(make_crawler(world), workers=1)
        return [scheduler.speculate(app_id) for app_id in sample[:n]]

    def test_roundtrip(self, pristine, tmp_path):
        from repro.crawler.scheduler import speculation_to_jsonable

        specs = self._speculations(pristine, 3)
        journal = ShardJournal(tmp_path / "shard0.jsonl", for_append=True)
        for spec in specs:
            journal.append(spec)
        journal.close()
        reopened = ShardJournal(tmp_path / "shard0.jsonl")
        assert reopened.app_ids() == {s.app_id for s in specs}
        decoded = reopened.speculations()
        for spec in specs:
            assert speculation_to_jsonable(
                decoded[spec.app_id]
            ) == speculation_to_jsonable(spec)

    def test_torn_tail_quarantined_to_sidecar(self, pristine, tmp_path):
        specs = self._speculations(pristine, 3)
        path = tmp_path / "shard0.jsonl"
        journal = ShardJournal(path, for_append=True)
        journal.append(specs[0])
        journal.append(specs[1])
        journal.append(specs[2], tear=True)  # the mid-append death artifact
        journal.close()

        recovered = ShardJournal(path)
        assert recovered.app_ids() == {specs[0].app_id, specs[1].app_id}
        assert len(recovered.quarantined) == 1
        sidecar = path.with_name(path.name + ".corrupt")
        assert sidecar.exists() and sidecar.stat().st_size > 0
        # recovery rewrote the journal: a second open sees no damage
        assert ShardJournal(path).quarantined == ()

    def test_repeated_quarantine_gets_fresh_sidecars(self, pristine, tmp_path):
        specs = self._speculations(pristine, 3)
        path = tmp_path / "shard0.jsonl"
        journal = ShardJournal(path, for_append=True)
        journal.append(specs[0], tear=True)
        journal.close()
        ShardJournal(path)  # first quarantine -> .corrupt
        journal = ShardJournal(path, for_append=True)
        journal.append(specs[1])
        journal.append(specs[2], tear=True)
        journal.close()
        ShardJournal(path)  # second quarantine -> .corrupt.1
        assert path.with_name(path.name + ".corrupt").exists()
        assert path.with_name(path.name + ".corrupt.1").exists()


# -- byte-identity under process faults --------------------------------------


def test_fault_free_multiprocess_is_byte_identical(pristine):
    world, sample = pristine
    apps = sample[:20]
    sequential = _sequential(world, apps)
    supervised, supervisor = _supervised(world, apps, processes=4)
    assert supervised == sequential
    assert supervisor.worker_deaths == 0
    assert supervisor.committed_speculative == len(apps)


def test_sigkill_mid_shard_is_byte_identical(pristine):
    """processes=4, one worker SIGKILLed mid-shard: identical output."""
    world, sample = pristine
    apps = sample[:24]
    sequential = _sequential(world, apps)
    supervised, supervisor = _supervised(
        world, apps, processes=4,
        chaos=WorkerChaos(mode=KILL, shard=1, app_index=2),
    )
    assert supervised == sequential
    assert supervisor.worker_deaths == 1
    assert supervisor.restarts == 1
    assert (
        supervisor.committed_speculative + supervisor.recrawled_inline
        == len(apps)
    )


def test_nonzero_exit_is_byte_identical(pristine):
    world, sample = pristine
    apps = sample[:16]
    sequential = _sequential(world, apps)
    supervised, supervisor = _supervised(
        world, apps, processes=3,
        chaos=WorkerChaos(mode=EXIT, shard=2, app_index=1),
    )
    assert supervised == sequential
    assert supervisor.worker_deaths == 1


def test_torn_shard_journal_is_byte_identical(pristine):
    """A worker dying mid-append leaves a torn line; recovery quarantines
    it and the replacement re-speculates that app — identical output."""
    world, sample = pristine
    apps = sample[:16]
    sequential = _sequential(world, apps)
    supervised, supervisor = _supervised(
        world, apps, processes=3,
        chaos=WorkerChaos(mode=TORN, shard=0, app_index=1),
    )
    assert supervised == sequential
    assert supervisor.worker_deaths == 1
    assert supervisor.restarts == 1


def test_hang_past_heartbeat_deadline_is_byte_identical(pristine):
    """A silent (hung) worker is killed at the deadline and replaced."""
    world, sample = pristine
    apps = sample[:16]
    sequential = _sequential(world, apps)
    supervised, supervisor = _supervised(
        world, apps, processes=3,
        heartbeat_timeout_s=1.0,
        chaos=WorkerChaos(mode=HANG, shard=1, app_index=1),
    )
    assert supervised == sequential
    assert supervisor.heartbeat_gaps == 1
    assert supervisor.worker_deaths == 1
    assert supervisor.restarts == 1


# -- the degradation ladder --------------------------------------------------


def test_budget_exhaustion_reassigns_and_completes(pristine):
    """Restart budget exhausted: remaining apps are reassigned to a
    rescue wave and the crawl still completes 100% of apps exactly once,
    byte-identical to sequential."""
    world, sample = pristine
    apps = sample[:18]
    sequential = _sequential(world, apps)
    supervised, supervisor = _supervised(
        world, apps, processes=3,
        max_restarts=1, restart_backoff_s=0.0,
        chaos=WorkerChaos(mode=KILL, shard=0, app_index=0, persistent=True),
    )
    assert supervised == sequential
    assert supervisor.worker_deaths == 2  # incarnations 0 and 1 of shard 0
    assert supervisor.reassigned_apps == len(apps[0::3])
    # every app committed exactly once, between the two commit modes
    assert (
        supervisor.committed_speculative + supervisor.recrawled_inline
        == len(apps)
    )
    assert set(supervised["records"]) == set(apps)


def test_every_worker_dying_falls_back_to_inline(pristine):
    """All workers die on every incarnation: the last rung (in-process
    sequential crawl at commit) still completes everything exactly once."""
    world, sample = pristine
    apps = sample[:12]
    sequential = _sequential(world, apps)
    supervised, supervisor = _supervised(
        world, apps, processes=3,
        max_restarts=1, restart_backoff_s=0.0,
        chaos=WorkerChaos(
            mode=KILL, shard=ALL_SHARDS, app_index=0, persistent=True
        ),
    )
    assert supervised == sequential
    assert supervisor.committed_speculative == 0
    assert supervisor.recrawled_inline == len(apps)
    assert set(supervised["records"]) == set(apps)


# -- composition with the main checkpoint journal ---------------------------


def test_journal_bytes_identical_under_worker_kill(pristine, tmp_path):
    """The main WAL's bytes are identical to a sequential journaled run
    even when a worker is killed mid-shard (shard journals live in a
    ``shards/`` subdirectory and never leak into the main journal)."""
    world, sample = pristine
    apps = sample[:15]

    def journaled(directory, **kwargs):
        state = world.installer.rng_state()
        crawler = make_crawler(world)
        with CrawlJournal(directory) as journal:
            if kwargs:
                ShardSupervisor(
                    crawler, heartbeat_timeout_s=NO_HANG_S, **kwargs
                ).crawl(apps, journal=journal)
            else:
                crawler.crawl_many(apps, journal=journal)
        world.installer.restore_rng_state(state)
        return (directory / "journal.jsonl").read_bytes()

    sequential = journaled(tmp_path / "seq")
    supervised = journaled(
        tmp_path / "sup", processes=3,
        chaos=WorkerChaos(mode=KILL, shard=1, app_index=1),
    )
    assert supervised == sequential
    shard_files = sorted(
        p.name for p in (tmp_path / "sup" / "shards").glob("shard*.jsonl")
    )
    assert shard_files == ["shard0.jsonl", "shard1.jsonl", "shard2.jsonl"]


def test_resume_after_supervisor_run_is_replayed(pristine, tmp_path):
    world, sample = pristine
    apps = sample[:9]
    crawler = make_crawler(world)
    with CrawlJournal(tmp_path) as journal:
        ShardSupervisor(
            crawler, processes=3, heartbeat_timeout_s=NO_HANG_S
        ).crawl(apps, journal=journal)
    # a fresh crawler resumes: everything is durable, nothing re-crawled
    resumed_crawler = make_crawler(world)
    with CrawlJournal(tmp_path) as journal:
        records = ShardSupervisor(
            resumed_crawler, processes=3, heartbeat_timeout_s=NO_HANG_S
        ).crawl(apps, journal=journal)
    assert sorted(records) == apps
    assert resumed_crawler.stats.requests > 0  # restored accounting


def test_pipeline_export_bytes_identical_under_worker_kill(
    tmp_path, monkeypatch
):
    """End to end: a full pipeline with ``crawl_processes=3`` and a
    SIGKILLed worker (injected via the chaos env var, as CI does)
    exports byte-identical dataset files to the sequential pipeline."""
    from repro.core.pipeline import FrappePipeline
    from repro.io import export_dataset

    def run(processes):
        return FrappePipeline(
            ScaleConfig(
                scale=TEST_SCALE,
                master_seed=TEST_SEED,
                fault_rate=FAULT_RATE,
                crawl_processes=processes,
            )
        ).run(sweep_unlabelled=False)

    monkeypatch.delenv(CHAOS_ENV, raising=False)
    export_dataset(run(1), tmp_path / "sequential.json")
    monkeypatch.setenv(CHAOS_ENV, "kill:0:1")
    export_dataset(run(3), tmp_path / "supervised.json")
    sequential = (tmp_path / "sequential.json").read_bytes()
    supervised = (tmp_path / "supervised.json").read_bytes()
    assert supervised == sequential


# -- clamping and dispatch ---------------------------------------------------


def test_processes_clamped_to_app_count(pristine, caplog):
    world, sample = pristine
    apps = sample[:3]
    sequential = _sequential(world, apps)
    with caplog.at_level(logging.WARNING, logger="repro.crawler.scheduler"):
        supervised, _ = _supervised(world, apps, processes=10)
    assert supervised == sequential
    assert any(
        "clamping processes from 10 to 3" in r.message for r in caplog.records
    )


def test_crawl_many_dispatches_processes(pristine):
    world, sample = pristine
    apps = sample[:8]
    sequential = _sequential(world, apps)
    crawler = make_crawler(world)
    records = crawler.crawl_many(apps, processes=4)
    assert _observables(world, crawler, records) == sequential


def test_invalid_supervisor_config_rejected(pristine):
    world, _ = pristine
    crawler = make_crawler(world)
    with pytest.raises(ValueError):
        ShardSupervisor(crawler, processes=0)
    with pytest.raises(ValueError):
        ShardSupervisor(crawler, processes=2, heartbeat_timeout_s=0.0)


# -- picklable transport state (process transfer) ----------------------------


def test_transport_stats_pickles_without_its_lock(pristine):
    world, sample = pristine
    crawler = make_crawler(world)
    crawler.crawl_many(sample[:2])
    stats = crawler.stats
    clone = pickle.loads(pickle.dumps(stats))
    assert isinstance(clone, TransportStats)
    assert clone.snapshot() == stats.snapshot()
    # the restored lock is a working lock, not a stale pickled stub
    with clone._lock:
        pass
