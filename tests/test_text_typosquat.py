"""Tests for typosquat detection and version-suffix stripping."""

from hypothesis import given, strategies as st

from repro.text.typosquat import is_typosquat, strip_version_suffix

POPULAR = {"FarmVille", "CityVille", "Mafia Wars"}


class TestVersionSuffix:
    def test_paper_examples(self):
        assert strip_version_suffix("Profile Watchers v4.32") == (
            "Profile Watchers",
            True,
        )
        assert strip_version_suffix(
            "How long have you spent logged in? v8"
        ) == ("How long have you spent logged in?", True)

    def test_no_version(self):
        assert strip_version_suffix("FarmVille") == ("FarmVille", False)

    def test_embedded_v_is_not_a_version(self):
        assert strip_version_suffix("v8 engines") == ("v8 engines", False)

    def test_uppercase_marker(self):
        assert strip_version_suffix("Past Life V2") == ("Past Life", True)

    @given(st.text(alphabet="abc ", max_size=10), st.integers(1, 99))
    def test_roundtrip(self, base, major):
        name = f"{base.strip()} v{major}"
        stripped, had = strip_version_suffix(name)
        if base.strip():
            assert had
            assert stripped == base.strip()


class TestTyposquat:
    def test_paper_example(self):
        assert is_typosquat("FarmVile", POPULAR)

    def test_exact_match_is_not_a_typosquat(self):
        assert not is_typosquat("FarmVille", POPULAR)

    def test_unrelated_name(self):
        assert not is_typosquat("Free Phone Calls", POPULAR)

    def test_versioned_popular_name(self):
        assert is_typosquat("FarmVille v3", POPULAR)

    def test_transposition(self):
        assert is_typosquat("FarmVilel", POPULAR)

    def test_empty_popular_set(self):
        assert not is_typosquat("FarmVile", set())
