"""Verdict-cache boundary cases: exact-tick expiry and refresh races.

The stale-while-revalidate windows are closed intervals on the
simulated clock (``age <= ttl`` is fresh, ``age <= stale_ttl`` is
stale), so an entry whose age lands *exactly* on a boundary tick must
take the more-available branch — served, not expired.  And the
single-flight revalidation marker must survive every interleaving with
a negative store: a ``PERMANENT`` removal landing mid-refresh cannot
wedge the marker or resurrect the stale window.
"""

from __future__ import annotations

import pytest

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.service import (
    INTERACTIVE,
    RUNG_FULL,
    RUNG_STALE,
    SERVED,
    CacheEntry,
    ScoreRequest,
    VerdictCache,
    make_service,
)
from repro.service.cache import EXPIRED, FRESH, MISS, STALE


def entry(app_id: str = "app", negative: bool = False) -> CacheEntry:
    return CacheEntry(
        app_id=app_id,
        verdict=True,
        risk_score=90.0,
        confidence="high",
        rung=RUNG_FULL,
        negative=negative,
    )


def cache() -> VerdictCache:
    return VerdictCache(ttl_s=100.0, stale_ttl_s=300.0, negative_ttl_s=1000.0)


class TestExactBoundaryTicks:
    """``age == boundary`` takes the more-available branch, everywhere."""

    def test_age_exactly_ttl_is_still_fresh(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        state, hit = c.lookup("app", now_s=100.0)
        assert state == FRESH and hit is not None
        assert c.hits_fresh == 1

    def test_one_tick_past_ttl_is_stale(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        state, hit = c.lookup("app", now_s=100.0 + 1e-9)
        assert state == STALE and hit is not None

    def test_age_exactly_stale_ttl_is_still_served_stale(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        state, hit = c.lookup("app", now_s=300.0)
        assert state == STALE and hit is not None
        assert c.hits_stale == 1

    def test_one_tick_past_stale_ttl_expires_and_counts_as_miss(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        state, hit = c.lookup("app", now_s=300.0 + 1e-9)
        assert state == EXPIRED and hit is not None
        assert c.misses == 1 and c.hits_stale == 0

    def test_negative_entry_exactly_at_its_ttl_is_fresh(self):
        c = cache()
        c.store(entry(negative=True), now_s=0.0)
        state, hit = c.lookup("app", now_s=1000.0)
        assert state == FRESH and hit is not None and hit.negative

    def test_negative_entry_past_its_ttl_skips_stale_entirely(self):
        # A removal needs no revalidation: the window after its TTL is
        # EXPIRED, never STALE — no background refresh is ever owed.
        c = cache()
        c.store(entry(negative=True), now_s=0.0)
        state, _hit = c.lookup("app", now_s=1000.0 + 1e-9)
        assert state == EXPIRED

    def test_zero_width_stale_window_goes_straight_to_expired(self):
        c = VerdictCache(ttl_s=100.0, stale_ttl_s=100.0, negative_ttl_s=1000.0)
        c.store(entry(), now_s=0.0)
        assert c.lookup("app", now_s=100.0)[0] == FRESH
        assert c.lookup("app", now_s=100.0 + 1e-9)[0] == EXPIRED


class TestNegativeStoreVsRefreshRace:
    """A negative store landing mid-revalidation leaves a sane cache."""

    def test_refresh_is_single_flight_until_resolved(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        assert c.begin_revalidation("app")
        assert not c.begin_revalidation("app")

    def test_negative_store_clears_the_revalidation_marker(self):
        # The in-flight refresh discovers a PERMANENT removal and stores
        # a negative entry.  The marker must clear with the store — a
        # wedged marker would block every future revalidation of the app.
        c = cache()
        c.store(entry(), now_s=0.0)
        assert c.begin_revalidation("app")
        c.store(entry(negative=True), now_s=150.0)
        assert c.lookup("app", now_s=150.0) == (FRESH, c.last_resort("app"))
        assert c.last_resort("app").negative
        assert c.begin_revalidation("app")  # marker did not wedge

    def test_abandoned_refresh_allows_a_retry(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        assert c.begin_revalidation("app")
        c.abandon_revalidation("app")  # shed / aged out in the queue
        assert c.begin_revalidation("app")

    def test_eviction_mid_refresh_clears_both_sides(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        assert c.begin_revalidation("app")
        c.evict("app")
        assert c.lookup("app", now_s=0.0) == (MISS, None)
        assert c.begin_revalidation("app")


@pytest.fixture(scope="module")
def clean_result():
    """A private fault-free pipeline (module-owned; serving mutates it)."""
    return FrappePipeline(
        ScaleConfig(scale=0.01, master_seed=424242, fault_rate=0.0)
    ).run(sweep_unlabelled=False)


class TestServiceAtTheBoundary:
    def test_entry_expiring_exactly_at_the_request_tick_serves_stale(
        self, clean_result
    ):
        """age == stale_ttl at service time → stale rung, one refresh."""
        service = make_service(clean_result, ServiceConfig())
        app_id = sorted(clean_result.bundle.d_sample)[0]
        cfg = service.config
        seeded = entry(app_id)
        service.cache.store(seeded, now_s=0.0)
        # Backdate so the age at now_s lands exactly on stale_ttl_s.
        seeded.stored_s = service.now_s - cfg.cache_stale_ttl_s
        response = service.score(app_id)
        assert response.outcome == SERVED
        assert response.rung == RUNG_STALE
        assert service.cache.hits_stale == 1
        # score() drains the scheduled refresh; the entry is fresh again.
        assert service.cache.lookup(app_id, service.now_s)[0] == FRESH
        assert service._report.refreshes_done == 1

    def test_concurrent_stale_hits_schedule_exactly_one_refresh(
        self, clean_result
    ):
        """Two stale hits racing in one tick → single-flight refresh."""
        service = make_service(clean_result, ServiceConfig())
        app_id = sorted(clean_result.bundle.d_sample)[1]
        seeded = entry(app_id)
        service.cache.store(seeded, now_s=0.0)
        seeded.stored_s = service.now_s - service.config.cache_ttl_s - 1.0
        now = service.now_s
        requests = [
            ScoreRequest(
                app_id=app_id,
                arrival_s=now,
                deadline_s=60.0,
                priority=INTERACTIVE,
                sequence=sequence,
            )
            for sequence in (1, 2)
        ]
        report = service.serve(requests)
        assert [r.rung for r in report.responses] == [RUNG_STALE, RUNG_STALE]
        assert report.refreshes_done == 1
        assert report.refreshes_shed == 0


class TestForensicInvalidation:
    """A monitor-detected forensic event obsoletes whatever is cached."""

    def test_deletion_evicts_a_positive_entry(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        assert c.invalidate_forensic("app", reason="deletion", now_s=5.0)
        state, hit = c.lookup("app", now_s=5.0)
        assert state == MISS and hit is None
        assert c.forensic_evictions == 1

    def test_deletion_evicts_a_negative_entry_too(self):
        # A negative entry stored *before* the deletion (under an
        # unrelated PERMANENT reason) would otherwise pin the pre-event
        # state for up to negative_ttl_s — it must go as well.
        c = cache()
        c.store(entry(negative=True), now_s=0.0)
        assert c.invalidate_forensic("app", reason="deletion", now_s=5.0)
        state, hit = c.lookup("app", now_s=5.0)
        assert state == MISS and hit is None
        assert c.forensic_evictions == 1

    def test_eviction_abandons_a_pending_revalidation(self):
        c = cache()
        c.store(entry(), now_s=0.0)
        assert c.begin_revalidation("app")
        c.invalidate_forensic("app", reason="permission_change", now_s=1.0)
        # The marker is gone: a later refresh may be scheduled anew.
        assert c.begin_revalidation("app")

    def test_no_entry_is_a_noop(self):
        c = cache()
        assert not c.invalidate_forensic("ghost", reason="rename")
        assert c.forensic_evictions == 0

    def test_eviction_reason_stamped_on_the_trace(self, tmp_path):
        from repro.obs import (
            TracingObserver,
            load_trace,
            observation,
            walk_events,
        )

        c = cache()
        c.store(entry(), now_s=0.0)
        c.store(entry("gone", negative=True), now_s=0.0)
        observer = TracingObserver()
        with observation(observer):
            c.invalidate_forensic("app", reason="rename", now_s=7.0)
            c.invalidate_forensic("gone", reason="deletion", now_s=8.0)
        roots = load_trace(observer.tracer.export(tmp_path / "trace.jsonl"))
        stamped = {
            event["attrs"]["app_id"]: event["attrs"]
            for _span, event in walk_events(roots)
            if event["name"] == "cache.forensic_evict"
        }
        assert stamped["app"]["reason"] == "rename"
        assert stamped["app"]["negative"] is False
        assert stamped["gone"]["reason"] == "deletion"
        assert stamped["gone"]["negative"] is True
        assert (
            observer.metrics.counter_value(
                "cache_forensic_evictions_total", reason="deletion"
            ) == 1.0
        )

    def test_service_surface_delegates_to_the_cache(self, clean_result):
        service = make_service(clean_result, ServiceConfig())
        app_id = sorted(clean_result.bundle.d_sample)[0]
        service.cache.store(entry(app_id), now_s=service.now_s)
        assert app_id in service.cache
        assert service.on_forensic_event(app_id, "deletion")
        assert app_id not in service.cache
        assert service.cache.forensic_evictions == 1
        assert not service.on_forensic_event(app_id, "deletion")
