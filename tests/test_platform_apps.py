"""Tests for applications, the registry, and permissions."""

import numpy as np
import pytest

from repro.platform.apps import AppRegistry, FacebookApp
from repro.platform.permissions import (
    PERMISSION_POOL,
    PUBLISH_STREAM,
    validate_permissions,
)


class TestPermissions:
    def test_pool_has_64_unique_permissions(self):
        assert len(PERMISSION_POOL) == 64
        assert len(set(PERMISSION_POOL)) == 64

    def test_validate_deduplicates_preserving_order(self):
        result = validate_permissions(
            [PUBLISH_STREAM, "email", PUBLISH_STREAM]
        )
        assert result == (PUBLISH_STREAM, "email")

    def test_unknown_permission_rejected(self):
        with pytest.raises(ValueError):
            validate_permissions(["not_a_permission"])

    def test_empty_request_rejected(self):
        with pytest.raises(ValueError):
            validate_permissions([])


class TestFacebookApp:
    def _app(self, **kwargs):
        defaults = dict(app_id="1", name="X", developer_id="d")
        defaults.update(kwargs)
        return FacebookApp(**defaults)

    def test_summary_flags(self):
        app = self._app(description="d", company="", category="Games")
        assert app.has_description and not app.has_company and app.has_category

    def test_invalid_permission_rejected_at_construction(self):
        with pytest.raises(ValueError):
            self._app(permissions=("bogus",))

    def test_mau_statistics(self):
        app = self._app(mau_series=(10, 50, 20))
        assert app.median_mau == 20
        assert app.max_mau == 50

    def test_mau_defaults(self):
        app = self._app()
        assert app.median_mau == 0
        assert app.max_mau == 0

    def test_deletion_semantics(self):
        app = self._app()
        assert not app.is_deleted()
        app.deleted_day = 100
        assert not app.is_deleted(99)
        assert app.is_deleted(100)
        assert app.is_deleted()  # day=None means "ever deleted"

    def test_platform_urls_embed_the_id(self):
        app = self._app(app_id="12345")
        assert "12345" in app.graph_url
        assert app.install_url.endswith("id=12345")


class TestAppRegistry:
    def test_create_mints_unique_numeric_ids(self):
        registry = AppRegistry(np.random.default_rng(0))
        ids = {registry.create(name=f"A{i}", developer_id="d").app_id
               for i in range(200)}
        assert len(ids) == 200
        assert all(len(i) == 15 and i.isdigit() for i in ids)

    def test_double_registration_rejected(self):
        registry = AppRegistry(np.random.default_rng(0))
        app = registry.create(name="A", developer_id="d")
        with pytest.raises(ValueError):
            registry.register(app)

    def test_lookup(self):
        registry = AppRegistry(np.random.default_rng(0))
        app = registry.create(name="A", developer_id="d")
        assert registry.get(app.app_id) is app
        assert registry.maybe_get("nope") is None
        assert app.app_id in registry

    def test_alive_respects_deletion_day(self):
        registry = AppRegistry(np.random.default_rng(0))
        alive = registry.create(name="A", developer_id="d")
        dead = registry.create(name="B", developer_id="d")
        dead.deleted_day = 10
        assert {a.app_id for a in registry.alive(day=20)} == {alive.app_id}
        assert len(registry.alive(day=5)) == 2

    def test_truth_partitions(self):
        registry = AppRegistry(np.random.default_rng(0))
        registry.create(name="good", developer_id="d")
        registry.create(name="bad", developer_id="h", truth_malicious=True)
        assert len(registry.malicious()) == 1
        assert len(registry.benign()) == 1

    def test_by_name(self):
        registry = AppRegistry(np.random.default_rng(0))
        registry.create(name="The App", developer_id="h")
        registry.create(name="The App", developer_id="h")
        registry.create(name="Other", developer_id="d")
        assert len(registry.by_name("The App")) == 2
