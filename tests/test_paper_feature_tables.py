"""Tables 4 and 7 are feature inventories — assert them as code.

DESIGN.md marks these two tables as 'documented; asserted in tests':
the feature groups must contain exactly the paper's features, and the
crawler must be able to source every on-demand feature from a single
app-ID crawl (Table 4's 'Source' column).
"""

from repro.core.features import (
    AGGREGATION_FEATURES,
    ON_DEMAND_FEATURES,
    FeatureExtractor,
)
from repro.crawler.crawler import CrawlRecord
from repro.urlinfra.wot import WotService

import numpy as np


def test_table4_feature_inventory():
    """Table 4 lists exactly these seven on-demand features."""
    assert set(ON_DEMAND_FEATURES) == {
        "has_category",          # Is category specified?
        "has_company",           # Is company name specified?
        "has_description",       # Is description specified?
        "has_profile_posts",     # Any posts in app profile page?
        "permission_count",      # Number of permissions required
        "client_id_mismatch",    # Is client ID different from app ID?
        "wot_score",             # Domain reputation of redirect URI
    }


def test_table7_feature_inventory():
    """Table 7 adds exactly the two aggregation-based features."""
    assert set(AGGREGATION_FEATURES) == {
        "name_matches_malicious",  # identical to a known malicious app?
        "external_link_ratio",     # posts linking outside Facebook
    }


def test_every_on_demand_feature_computable_from_one_crawl():
    """Table 4's point: one crawl of the app ID suffices — no post log,
    no cross-app aggregates."""
    extractor = FeatureExtractor(wot=WotService(np.random.default_rng(0)))
    record = CrawlRecord(
        app_id="1",
        summary_ok=True,
        name="X",
        description="d",
        category="Games",
        feed_ok=True,
        inst_ok=True,
        permissions=("publish_stream",),
        observed_client_id="1",
        redirect_uri="https://apps.facebook.com/x",
    )
    vector = extractor.vector(record, ON_DEMAND_FEATURES)
    assert vector.shape == (len(ON_DEMAND_FEATURES),)
    assert np.all(np.isfinite(vector))


def test_aggregation_features_degrade_gracefully_without_context():
    """Without a post log / name corpus the aggregation features are
    well-defined (zero), so FRAppE Lite deployments never crash."""
    extractor = FeatureExtractor(wot=WotService(np.random.default_rng(0)))
    record = CrawlRecord(app_id="1", summary_ok=True, name="X")
    vector = extractor.vector(record, AGGREGATION_FEATURES)
    assert vector.tolist() == [0.0, 0.0]
