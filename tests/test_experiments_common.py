"""Tests for the shared experiment cache."""

from repro.core.pipeline import PipelineResult
from repro.experiments import common


def test_get_result_caches_per_configuration():
    common.clear_cache()
    try:
        first = common.get_result(scale=0.01, seed=31, sweep=False)
        second = common.get_result(scale=0.01, seed=31, sweep=False)
        assert first is second
        assert isinstance(first, PipelineResult)
    finally:
        common.clear_cache()


def test_sweep_result_satisfies_non_sweep_requests():
    common.clear_cache()
    try:
        swept = common.get_result(scale=0.01, seed=32, sweep=True)
        plain = common.get_result(scale=0.01, seed=32, sweep=False)
        assert plain is swept
    finally:
        common.clear_cache()


def test_collusion_cache_reuses_the_pipeline():
    common.clear_cache()
    try:
        result, graph_a = common.get_collusion(scale=0.01, seed=33)
        result_b, graph_b = common.get_collusion(scale=0.01, seed=33)
        assert result is result_b
        assert graph_a is graph_b
    finally:
        common.clear_cache()
