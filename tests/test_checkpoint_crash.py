"""Crash-injection tests: the kill-anywhere resume invariant.

The contract under test (see :mod:`repro.crawler.checkpoint`): interrupt
a checkpointed crawl at *any* point — every :class:`CrashPlan` injection
site, including the torn-write window mid-append, and a real SIGKILL of
the CLI process — then resume with the same configuration, and the final
records (and the exported dataset) are byte-identical to an
uninterrupted run.  With checkpointing disabled the pipeline must be
bit-identical to a journal-less build.

Set ``REPRO_CHAOS_DIR`` to keep the journals of failing tests for
post-mortem (CI uploads them as artifacts).
"""

from __future__ import annotations

import errno
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import ScaleConfig
from repro.core.pipeline import FrappePipeline
from repro.crawler.checkpoint import (
    CRASH_POINTS,
    MID_APPEND,
    CrashPlan,
    CrawlJournal,
    SimulatedCrash,
    record_to_jsonable,
)
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.ecosystem.simulation import run_simulation
from repro.io import export_dataset
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper

from tests.conftest import TEST_SCALE, TEST_SEED

FAULT_RATE = 0.2
#: apps under the kill-anywhere sweep (keeps the point × index grid fast)
N_APPS = 8

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def faulted_world():
    return run_simulation(
        ScaleConfig(scale=TEST_SCALE, master_seed=TEST_SEED, fault_rate=FAULT_RATE)
    )


@pytest.fixture(scope="module")
def sample(faulted_world):
    report = MyPageKeeper(
        UrlClassifier(faulted_world.services.blacklist), faulted_world.post_log
    ).scan()
    bundle = DatasetBuilder(faulted_world, report).build(crawl=False)
    return sorted(bundle.d_sample)


@pytest.fixture(scope="module")
def baseline(faulted_world, sample):
    """(apps, canonical bytes) of an uninterrupted crawl of N_APPS apps."""
    apps = sample[:N_APPS]
    state = faulted_world.installer.rng_state()
    records = make_crawler(faulted_world).crawl_many(apps)
    faulted_world.installer.restore_rng_state(state)
    return apps, _canon(records)


@pytest.fixture()
def pristine_world(faulted_world):
    state = faulted_world.installer.rng_state()
    yield faulted_world
    faulted_world.installer.restore_rng_state(state)


@pytest.fixture()
def chaos_dir(tmp_path, request):
    """Journal home: a kept directory under $REPRO_CHAOS_DIR, else tmp.

    Pointing the journals at a persistent directory lets CI upload the
    journal + ``.corrupt`` sidecars of a failed chaos test as artifacts.
    """
    base = os.environ.get("REPRO_CHAOS_DIR")
    if not base:
        return tmp_path
    safe = re.sub(r"[^\w.-]+", "_", request.node.name)
    path = Path(base) / safe
    path.mkdir(parents=True, exist_ok=True)
    return path


def _canon(records) -> bytes:
    return json.dumps(
        {a: record_to_jsonable(r) for a, r in sorted(records.items())},
        sort_keys=True,
    ).encode()


# -- kill-anywhere, every injection point -----------------------------------


@pytest.mark.parametrize("point", CRASH_POINTS)
@pytest.mark.parametrize("app_index", [0, N_APPS // 2, N_APPS - 1])
def test_crash_anywhere_then_resume_is_byte_identical(
    chaos_dir, pristine_world, baseline, point, app_index
):
    apps, expected = baseline
    plan = CrashPlan(app_index=app_index, point=point)
    journal = CrawlJournal(chaos_dir)
    with pytest.raises(SimulatedCrash):
        make_crawler(pristine_world).crawl_many(
            apps, journal=journal, crash_plan=plan
        )
    journal.close()
    assert plan.fired

    # 'reboot': fresh journal object, fresh crawler, same configuration
    resumed_journal = CrawlJournal(chaos_dir)
    if point == MID_APPEND:
        assert resumed_journal.truncated_torn_line
    resumed = make_crawler(pristine_world).crawl_many(
        apps, journal=resumed_journal
    )
    resumed_journal.close()
    assert _canon(resumed) == expected


def test_random_crash_plan_resumes(chaos_dir, pristine_world, baseline):
    apps, expected = baseline
    plan = CrashPlan.random(seed=TEST_SEED, n_apps=len(apps))
    journal = CrawlJournal(chaos_dir)
    with pytest.raises(SimulatedCrash):
        make_crawler(pristine_world).crawl_many(
            apps, journal=journal, crash_plan=plan
        )
    journal.close()
    resumed_journal = CrawlJournal(chaos_dir)
    resumed = make_crawler(pristine_world).crawl_many(apps, journal=resumed_journal)
    resumed_journal.close()
    assert _canon(resumed) == expected


def test_double_crash_then_resume(chaos_dir, pristine_world, baseline):
    """Two successive incarnations die before one finally finishes."""
    apps, expected = baseline
    for plan in (
        CrashPlan(app_index=1, point=MID_APPEND),
        CrashPlan(app_index=2, point="after_crawl"),
    ):
        journal = CrawlJournal(chaos_dir)
        with pytest.raises(SimulatedCrash):
            make_crawler(pristine_world).crawl_many(
                apps, journal=journal, crash_plan=plan
            )
        journal.close()
    final_journal = CrawlJournal(chaos_dir)
    resumed = make_crawler(pristine_world).crawl_many(apps, journal=final_journal)
    final_journal.close()
    assert _canon(resumed) == expected


# -- pipeline-level byte identity -------------------------------------------


def _pipeline_config(**kw) -> ScaleConfig:
    return ScaleConfig(
        scale=TEST_SCALE, master_seed=TEST_SEED, fault_rate=FAULT_RATE, **kw
    )


def test_pipeline_checkpointing_disabled_is_bit_identical(tmp_path):
    """checkpoint_dir=None must not perturb the study in any way."""
    plain = FrappePipeline(_pipeline_config()).run(sweep_unlabelled=False)
    export_dataset(plain, tmp_path / "plain.json")
    ckpt = FrappePipeline(
        _pipeline_config(checkpoint_dir=str(tmp_path / "ck"))
    ).run(sweep_unlabelled=False)
    export_dataset(ckpt, tmp_path / "ckpt.json")
    plain_bytes = (tmp_path / "plain.json").read_bytes()
    assert (tmp_path / "ckpt.json").read_bytes() == plain_bytes


def test_pipeline_crash_resume_export_byte_identical(chaos_dir, tmp_path):
    """Kill a checkpointed pipeline mid-crawl; the resumed export matches."""
    plain = FrappePipeline(_pipeline_config()).run(sweep_unlabelled=False)
    export_dataset(plain, tmp_path / "plain.json")
    plain_bytes = (tmp_path / "plain.json").read_bytes()

    config = _pipeline_config(checkpoint_dir=str(chaos_dir), resume=True)
    world = run_simulation(config)
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    bundle = DatasetBuilder(world, report).build(crawl=False)
    journal = CrawlJournal(chaos_dir)
    with pytest.raises(SimulatedCrash):
        make_crawler(world).crawl_many(
            bundle.d_sample,
            journal=journal,
            crash_plan=CrashPlan(app_index=5, point=MID_APPEND),
        )
    journal.close()

    resumed = FrappePipeline(config).run(sweep_unlabelled=False)
    export_dataset(resumed, tmp_path / "resumed.json")
    assert (tmp_path / "resumed.json").read_bytes() == plain_bytes


# -- a real SIGKILL of the CLI ----------------------------------------------


def _run_crawl_cli(checkpoint: Path, resume: bool = False):
    argv = [
        sys.executable, "-m", "repro",
        "--scale", str(TEST_SCALE), "--seed", str(TEST_SEED),
        "--fault-rate", str(FAULT_RATE),
        "--checkpoint", str(checkpoint),
    ]
    if resume:
        argv.append("--resume")
    argv.append("crawl")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
    )


def test_cli_survives_kill_dash_nine(chaos_dir, tmp_path):
    """SIGKILL the crawl CLI at a random-ish time; resume; compare stdout.

    Replay progress goes to stderr precisely so that stdout stays
    byte-comparable between a resumed and an uninterrupted run.
    """
    # the reference: an uninterrupted checkpointed run, timed
    start = time.monotonic()
    reference = _run_crawl_cli(tmp_path / "reference")
    ref_stdout, _ = reference.communicate(timeout=600)
    duration = time.monotonic() - start
    assert reference.returncode == 0

    # the victim: same run, SIGKILLed mid-crawl (~60% through)
    victim = _run_crawl_cli(chaos_dir)
    time.sleep(max(0.2, duration * 0.6))
    victim.kill()
    victim.communicate()
    assert victim.returncode != 0

    # resume to completion; stdout must match the uninterrupted run
    resumed = _run_crawl_cli(chaos_dir, resume=True)
    resumed_stdout, _ = resumed.communicate(timeout=600)
    assert resumed.returncode == 0
    assert resumed_stdout == ref_stdout


# -- simulated disk-full (ENOSPC) -------------------------------------------


class _DiskFullHandle:
    """A file-handle proxy whose Nth write fills the disk mid-line.

    Models ENOSPC the way it actually bites an appender: part of the
    line makes it to the page cache, then the write fails — leaving the
    same torn-final-line artifact as a power cut mid-append.
    """

    def __init__(self, fh, fail_at_write: int) -> None:
        self._fh = fh
        self._fail_at = fail_at_write
        self._writes = 0

    def write(self, data: bytes) -> int:
        self._writes += 1
        if self._writes == self._fail_at:
            self._fh.write(data[: max(1, len(data) // 3)])
            self._fh.flush()
            raise OSError(errno.ENOSPC, "No space left on device")
        return self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def fileno(self) -> int:
        return self._fh.fileno()

    def close(self) -> None:
        self._fh.close()


def test_enospc_mid_append_resumes_byte_identical(
    chaos_dir, pristine_world, baseline
):
    """Disk fills mid-append: the torn entry is absorbed on resume, the
    resumed crawl is byte-identical, and no retry budget or fault draw
    is double-counted for the app whose durability write died."""
    apps, expected = baseline

    # Uninterrupted reference for the no-double-counted-budget check.
    state = pristine_world.installer.rng_state()
    reference = make_crawler(pristine_world)
    reference.crawl_many(apps)
    pristine_world.installer.restore_rng_state(state)
    expected_stats = reference.stats.snapshot()

    journal = CrawlJournal(chaos_dir)
    # Disk fills while appending the third app's journal line.
    journal._fh = _DiskFullHandle(journal._fh, fail_at_write=3)
    with pytest.raises(OSError) as excinfo:
        make_crawler(pristine_world).crawl_many(apps, journal=journal)
    assert excinfo.value.errno == errno.ENOSPC
    journal.close()

    # 'reboot' after the operator frees space: the torn line is the
    # expected crash artifact — truncated, not quarantined, not fatal.
    resumed_journal = CrawlJournal(chaos_dir)
    assert resumed_journal.truncated_torn_line
    assert len(resumed_journal) == 2  # exactly the durable prefix
    crawler = make_crawler(pristine_world)
    resumed = crawler.crawl_many(apps, journal=resumed_journal)
    resumed_journal.close()
    assert _canon(resumed) == expected
    # The app with the torn line was re-crawled exactly once: total
    # requests and injected-fault draws match the uninterrupted run.
    assert crawler.stats.snapshot() == expected_stats


def test_enospc_on_monitor_journal_resumes_byte_identical(tmp_path):
    """The monitor's history store absorbs a disk-full append the same
    way: torn entry truncated on reopen, resumed history byte-identical."""
    from repro.crawler.monitor import AppMonitor, MonitorConfig, MonitorJournal

    config = ScaleConfig(
        scale=TEST_SCALE, master_seed=TEST_SEED, fault_rate=FAULT_RATE
    )

    def fresh(directory):
        world = run_simulation(config)
        report = MyPageKeeper(
            UrlClassifier(world.services.blacklist), world.post_log
        ).scan()
        apps = sorted(
            DatasetBuilder(world, report).build(crawl=False).d_sample
        )[:N_APPS]
        return AppMonitor(
            world, make_crawler(world), apps,
            config=MonitorConfig(epochs=1),
            journal=MonitorJournal(directory),
        )

    monitor = fresh(tmp_path / "ref")
    monitor.run()
    expected = monitor.export_history_bytes()
    monitor.journal.close()

    monitor = fresh(tmp_path / "mon")
    monitor.journal._fh = _DiskFullHandle(
        monitor.journal._fh, fail_at_write=4
    )
    with pytest.raises(OSError) as excinfo:
        monitor.run()
    assert excinfo.value.errno == errno.ENOSPC
    monitor.journal.close()

    monitor = fresh(tmp_path / "mon")
    assert monitor.journal.truncated_torn_line
    monitor.run()
    assert monitor.export_history_bytes() == expected
    monitor.journal.close()
