"""Tests for threshold name clustering (Fig 10/11 machinery)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.text.clustering import cluster_names
from repro.text.editdist import name_similarity

_NAMES = st.lists(st.text(alphabet="abcd", min_size=1, max_size=6), max_size=25)


def test_threshold_one_groups_identical_names_only():
    names = ["The App"] * 3 + ["La App", "Past Life"]
    clustering = cluster_names(names, 1.0)
    assert clustering.n_clusters == 3
    assert sorted(clustering.cluster_sizes(), reverse=True) == [3, 1, 1]
    assert clustering.largest() == ["The App"] * 3


def test_lower_threshold_merges_similar_names():
    names = ["Past Life", "Past Live", "Zebra Quest"]
    at_one = cluster_names(names, 1.0)
    at_085 = cluster_names(names, 0.85)
    assert at_one.n_clusters == 3
    assert at_085.n_clusters == 2  # 'Past Life' ~ 'Past Live' (8/9)


def test_reduction_ratio_definition():
    clustering = cluster_names(["a", "a", "b", "c"], 1.0)
    assert clustering.reduction_ratio == pytest.approx(3 / 4)


def test_empty_input():
    clustering = cluster_names([], 1.0)
    assert clustering.n_clusters == 0
    assert clustering.reduction_ratio == 1.0
    assert clustering.largest() == []


def test_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        cluster_names(["a"], 0.0)
    with pytest.raises(ValueError):
        cluster_names(["a"], 1.5)


def test_single_linkage_is_transitive():
    # a~b and b~c but a!~c: single linkage still merges all three.
    names = ["aaaa", "aaab", "aabb"]
    assert name_similarity("aaaa", "aabb") < 0.75
    assert name_similarity("aaaa", "aaab") >= 0.75
    assert name_similarity("aaab", "aabb") >= 0.75
    clustering = cluster_names(names, 0.75)
    assert clustering.n_clusters == 1


@settings(deadline=None)
@given(names=_NAMES)
def test_clusters_partition_the_input(names):
    clustering = cluster_names(names, 0.7)
    flattened = sorted(n for cluster in clustering.clusters for n in cluster)
    assert flattened == sorted(names)


@settings(deadline=None)
@given(names=_NAMES)
def test_identical_names_always_share_a_cluster(names):
    clustering = cluster_names(names, 0.8)
    owner: dict[str, int] = {}
    for index, cluster in enumerate(clustering.clusters):
        for name in cluster:
            assert owner.setdefault(name, index) == index


@settings(deadline=None)
@given(names=_NAMES)
def test_cluster_count_monotone_in_threshold(names):
    """Lower thresholds can only merge clusters, never split them."""
    high = cluster_names(names, 0.9).n_clusters
    low = cluster_names(names, 0.6).n_clusters
    assert low <= high


@settings(deadline=None)
@given(names=_NAMES)
def test_threshold_one_matches_set_of_uniques(names):
    clustering = cluster_names(names, 1.0)
    assert clustering.n_clusters == len(set(names))
