"""The multi-worker crawl scheduler's sequential-equivalence contract.

``crawl_many(..., workers=k)`` must be **byte-identical** to the
sequential crawl for any worker count — same records, same transport
accounting (clocks included: float addition is replayed increment by
increment), same breaker states, same installer RNG position, same
journal bytes — at fault rate 0 and under heavy injected faults.  These
tests crawl the same D-Sample both ways and compare every observable.
"""

from __future__ import annotations

import logging

import pytest

from repro.config import ScaleConfig
from repro.crawler.checkpoint import CrawlJournal, record_to_jsonable
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.crawler.scheduler import CrawlScheduler, clamp_width
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper

from tests.conftest import TEST_SCALE, TEST_SEED

WORKER_COUNTS = (2, 4, 7)
FAULT_RATES = (0.0, 0.2)


@pytest.fixture(scope="module", params=FAULT_RATES, ids=lambda r: f"fault{r}")
def crawl_world(request):
    """One world per fault rate, with its D-Sample attached."""
    world = run_simulation(
        ScaleConfig(
            scale=TEST_SCALE, master_seed=TEST_SEED, fault_rate=request.param
        )
    )
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    bundle = DatasetBuilder(world, report).build(crawl=False)
    return world, sorted(bundle.d_sample)


@pytest.fixture()
def pristine(crawl_world):
    """Restore the installer RNG (the only world state a crawl consumes)."""
    world, sample = crawl_world
    state = world.installer.rng_state()
    yield world, sample
    world.installer.restore_rng_state(state)


def _observables(world, crawler, records):
    """Every externally visible consequence of a crawl, comparable."""
    return {
        "records": {a: record_to_jsonable(r) for a, r in sorted(records.items())},
        "stats": crawler.stats.snapshot(),
        "state": crawler.snapshot_state(),
        "installer_rng": world.installer.rng_state(),
    }


def _crawl_observables(world, sample, workers):
    crawler = make_crawler(world)
    records = crawler.crawl_many(sample, workers=workers)
    return _observables(world, crawler, records)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_crawl_byte_identical(pristine, workers):
    world, sample = pristine
    state = world.installer.rng_state()
    sequential = _crawl_observables(world, sample, workers=1)
    world.installer.restore_rng_state(state)
    parallel = _crawl_observables(world, sample, workers=workers)
    assert parallel == sequential


def test_scheduler_accounts_for_every_app(pristine):
    world, sample = pristine
    scheduler = CrawlScheduler(make_crawler(world), workers=4)
    records = scheduler.crawl(sample)
    assert len(records) == len(sample)
    assert (
        scheduler.committed_speculative + scheduler.recrawled_inline
        == len(sample)
    )


def test_workers_one_short_circuits(pristine):
    """workers=1 must take the literal sequential path, not a 1-wide pool."""
    world, sample = pristine
    crawler = make_crawler(world)
    scheduler = CrawlScheduler(crawler, workers=1)
    records = scheduler.crawl(sample[:4])
    assert len(records) == 4
    assert scheduler.committed_speculative == 0
    assert scheduler.recrawled_inline == 0


def test_invalid_worker_count_rejected(pristine):
    world, _ = pristine
    with pytest.raises(ValueError):
        CrawlScheduler(make_crawler(world), workers=0)


def test_clamp_width_basics(caplog):
    with caplog.at_level(logging.WARNING, logger="repro.crawler.scheduler"):
        assert clamp_width(10, 3) == 3
        assert clamp_width(2, 3) == 2
        assert clamp_width(3, 3) == 3
        assert clamp_width(5, 0) == 1  # never below 1
    clamped = [r for r in caplog.records if "clamping" in r.message]
    assert len(clamped) == 2  # 10->3 and 5->1 warned; exact fits did not


def test_excess_workers_clamped_to_app_count(pristine, caplog):
    """crawl_many(workers=10) on 3 apps spawns 3 shards, not 10 — loudly."""
    world, sample = pristine
    apps = sample[:3]
    state = world.installer.rng_state()
    sequential = _crawl_observables(world, apps, workers=1)
    world.installer.restore_rng_state(state)
    with caplog.at_level(logging.WARNING, logger="repro.crawler.scheduler"):
        clamped = _crawl_observables(world, apps, workers=10)
    assert clamped == sequential
    assert any(
        "clamping workers from 10 to 3" in r.message for r in caplog.records
    )


def test_parallel_journal_bytes_identical(pristine, tmp_path):
    """The checkpoint journal composes with the scheduler unchanged."""
    world, sample = pristine
    apps = sample[:24]

    def journaled(workers, directory):
        state = world.installer.rng_state()
        with CrawlJournal(directory) as journal:
            make_crawler(world).crawl_many(apps, journal=journal, workers=workers)
        world.installer.restore_rng_state(state)
        return (directory / "journal.jsonl").read_bytes()

    sequential = journaled(1, tmp_path / "seq")
    parallel = journaled(4, tmp_path / "par")
    assert parallel == sequential
    # sanity: the journal is not trivially empty
    assert len([line for line in sequential.splitlines() if line]) >= len(apps)
