"""Boundary behaviour of the windowed drift detector.

These tests pin the decision rule promised in ``repro.ml.drift``'s
module docstring: a window *is* drifted when its statistic reaches the
decision line exactly (``>=``), a window is evaluated the moment it is
exactly full, zero-variance columns compare as two-bin histograms
instead of NaN, and single-sample windows are legal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.drift import (
    DriftConfig,
    DriftDetector,
    ks_noise_allowance,
    ks_statistic,
    psi,
    psi_noise_allowance,
)

FEATURES = ("f0", "f1")


def make_detector(config=None, n_ref=200, seed=0):
    rng = np.random.default_rng(seed)
    reference = rng.normal(size=(n_ref, len(FEATURES)))
    margins = rng.normal(loc=-0.5, size=n_ref)  # mostly benign
    detector = DriftDetector(reference, margins, FEATURES, config)
    return detector, reference, margins


# -- the statistics themselves -------------------------------------------


def test_psi_identical_samples_is_zero():
    rng = np.random.default_rng(1)
    sample = rng.normal(size=500)
    assert psi(sample, sample) == pytest.approx(0.0, abs=1e-9)


def test_psi_shifted_sample_is_large():
    rng = np.random.default_rng(2)
    reference = rng.normal(size=500)
    assert psi(reference, reference + 3.0) > 1.0


def test_psi_zero_variance_reference_identical_window():
    """A constant column that stayed put scores 0, not NaN."""
    constant = np.full(100, 7.0)
    # Not exactly 0: the epsilon smoothing leaves a sub-1e-5 residue
    # when the window and reference sizes differ.
    assert psi(constant, constant[:30]) == pytest.approx(0.0, abs=1e-4)


def test_psi_zero_variance_reference_moved_constant():
    """A constant column that *moved* scores high, not NaN."""
    value = psi(np.full(100, 7.0), np.full(30, 8.0))
    assert np.isfinite(value)
    assert value > 1.0


def test_psi_binary_column_rate_shift_is_visible():
    """Discrete columns must not collapse into a single quantile bin."""
    reference = np.array([0.0] * 90 + [1.0] * 10)
    window = np.array([0.0] * 10 + [1.0] * 90)
    assert psi(reference, window) > 0.5


def test_ks_statistic_bounds_and_extremes():
    same = np.arange(50, dtype=float)
    assert ks_statistic(same, same) == pytest.approx(0.0)
    assert ks_statistic(same, same + 1000.0) == pytest.approx(1.0)
    assert ks_statistic(np.zeros(0), same) == 0.0


def test_noise_allowances_shrink_with_sample_size():
    assert psi_noise_allowance(50, 50, 8) > psi_noise_allowance(5000, 5000, 8)
    assert ks_noise_allowance(50, 50) > ks_noise_allowance(5000, 5000)
    assert psi_noise_allowance(0, 50, 8) == 0.0
    assert ks_noise_allowance(50, 0) == 0.0


# -- config validation ---------------------------------------------------


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        DriftConfig(window=0)


def test_reference_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        DriftDetector(np.zeros((10, 3)), np.zeros(10), FEATURES)


# -- windowing edges -----------------------------------------------------


def test_window_evaluates_the_moment_it_is_exactly_full():
    detector, reference, margins = make_detector(DriftConfig(window=4))
    assert detector.update(reference[:3], margins[:3], t=1.0) == []
    produced = detector.update(reference[3:4], margins[3:4], t=2.0)
    assert len(produced) == 1
    assert produced[0].n_samples == 4
    assert produced[0].t == 2.0


def test_drift_starting_exactly_on_a_window_edge():
    """Pre-edge samples fill window 1, drifted samples fill window 2 —
    the drift must not bleed backwards into the clean window."""
    detector, reference, margins = make_detector(DriftConfig(window=4))
    clean = reference[:4]
    drifted = reference[4:8] + 10.0
    rows = np.vstack([clean, drifted])
    row_margins = np.concatenate([margins[:4], margins[4:8] + 10.0])
    first, second = detector.update(rows, row_margins, t=5.0)
    assert not first.feature_drift
    assert second.feature_drift
    assert set(second.drifted_features) == set(FEATURES)


def test_single_sample_windows_are_legal():
    detector, reference, margins = make_detector(DriftConfig(window=1))
    reports = detector.update(reference[:3], margins[:3], t=1.0)
    assert len(reports) == 3
    assert all(report.n_samples == 1 for report in reports)
    # A one-point ECDF far outside the reference support is definite.
    (outlier,) = detector.update(
        np.array([[50.0, 50.0]]), np.array([5.0]), t=2.0
    )
    assert outlier.feature_drift


def test_all_identical_window_never_drifts_against_itself():
    """Zero-variance windows over a zero-variance reference: silence."""
    constant = np.full((60, len(FEATURES)), 3.0)
    margins = np.full(60, -1.0)
    detector = DriftDetector(constant, margins, FEATURES, DriftConfig(window=20))
    reports = detector.update(constant[:40], margins[:40], t=1.0)
    assert len(reports) == 2
    assert not any(report.drifted for report in reports)


def test_all_identical_window_that_moved_drifts():
    constant = np.full((60, len(FEATURES)), 3.0)
    margins = np.full(60, -1.0)
    detector = DriftDetector(constant, margins, FEATURES, DriftConfig(window=20))
    (report,) = detector.update(
        np.full((20, len(FEATURES)), 4.0), np.full(20, -1.0), t=1.0
    )
    assert report.feature_drift
    assert set(report.drifted_features) == set(FEATURES)


def test_flush_evaluates_partial_window_and_empties():
    detector, reference, margins = make_detector(DriftConfig(window=100))
    detector.update(reference[:7], margins[:7], t=1.0)
    report = detector.flush(t=2.0)
    assert report is not None and report.n_samples == 7
    assert detector.flush(t=3.0) is None


# -- the inclusive decision line -----------------------------------------


def test_positive_rate_shift_at_threshold_exactly_is_drift():
    """The calibration gate is inclusive: delta == threshold flags."""
    # score_psi_threshold is parked out of reach so the verdict is
    # attributable to the positive-rate gate alone.
    config = DriftConfig(
        window=4, positive_rate_delta=0.5, score_psi_threshold=100.0
    )
    reference = np.zeros((40, len(FEATURES)))
    margins = np.full(40, -1.0)  # reference positive rate 0.0
    detector = DriftDetector(reference, margins, FEATURES, config)
    # Window positive rate exactly 0.5: |0.5 - 0.0| >= 0.5 must flag.
    (report,) = detector.update(
        reference[:4], np.array([1.0, 1.0, -1.0, -1.0]), t=1.0
    )
    assert report.window_positive_rate == pytest.approx(0.5)
    assert report.score_drift and report.drifted


def test_positive_rate_shift_below_threshold_is_silence():
    config = DriftConfig(
        window=4, positive_rate_delta=0.5, score_psi_threshold=100.0
    )
    reference = np.zeros((40, len(FEATURES)))
    margins = np.full(40, -1.0)
    detector = DriftDetector(reference, margins, FEATURES, config)
    (report,) = detector.update(
        reference[:4], np.array([1.0, -1.0, -1.0, -1.0]), t=1.0
    )
    assert report.window_positive_rate == pytest.approx(0.25)
    assert not report.drifted


# -- rebaseline ----------------------------------------------------------


def test_rebaseline_absorbs_the_new_normal():
    detector, reference, margins = make_detector(DriftConfig(window=10))
    shifted = reference[:10] + 10.0
    (before,) = detector.update(shifted, margins[:10], t=1.0)
    assert before.feature_drift
    detector.rebaseline(reference + 10.0, margins)
    (after,) = detector.update(shifted, margins[:10], t=2.0)
    assert not after.feature_drift
