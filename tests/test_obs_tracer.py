"""The structured tracer: causality, canonical export, the full chain.

Unit tests pin the tracer's determinism rules (nesting, last-recording-
wins, canonical root order, auto keys, post-close patching), and the
acceptance test drives a fault_rate=0.2 service with a hair-trigger
breaker and asserts the exported trace reconstructs the complete causal
chain — retry attempt → injected fault → breaker transition →
degradation rung → typed response — for at least one faulted app.
"""

from __future__ import annotations

import json

import pytest

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.obs import TracingObserver, Tracer, load_trace, observation, walk_events
from repro.service import make_service


class TestSpanTree:
    def test_nested_spans_become_children(self):
        tracer = Tracer()
        with tracer.span("outer", key="k", category="crawl", t=0.0) as outer:
            with tracer.span("inner", key="k", category="crawl", t=1.0) as inner:
                tracer.event("tick", t=1.5, detail="x")
        assert outer.children == [inner]
        assert [e.name for e in inner.events] == ["tick"]
        roots = tracer.roots()
        assert roots == [outer]  # only the outer span is a root

    def test_last_recording_wins_per_category_key(self):
        # The scheduler's inline re-crawl after a discarded speculation
        # re-records the same (category, key); the committed crawl's
        # trace must be the one that survives.
        tracer = Tracer()
        with tracer.span("crawl.app", key="app1", t=0.0) as first:
            first.note(which="speculation")
        with tracer.span("crawl.app", key="app1", t=0.0) as second:
            second.note(which="inline")
        (root,) = tracer.roots()
        assert root.attrs["which"] == "inline"

    def test_auto_keys_are_sequential_per_category_and_name(self):
        tracer = Tracer()
        with tracer.span("svm.fit", category="train"):
            pass
        with tracer.span("svm.fit", category="train"):
            pass
        assert [s.key for s in tracer.roots()] == ["000000", "000001"]

    def test_event_outside_any_span_lands_on_a_category_root(self):
        tracer = Tracer()
        tracer.event("schedule.commit", t=3.0, category="schedule", app_id="a")
        (root,) = tracer.roots()
        assert root.name == "_root" and root.category == "schedule"
        assert root.events[0].attrs == {"app_id": "a"}

    def test_note_and_end_work_after_the_span_closes(self):
        # Batched serving closes request spans before outcomes are
        # known; the tick patches them in afterwards.
        tracer = Tracer()
        with tracer.span("serve.request", key="000001", category="serve") as span:
            pass
        span.end(12.5)
        span.note(outcome="served", batch_size=4)
        (root,) = tracer.roots()
        assert root.t_end == 12.5
        assert root.attrs == {"outcome": "served", "batch_size": 4}

    def test_duration_is_clamped_non_negative(self):
        tracer = Tracer()
        with tracer.span("s", key="k", t=10.0) as span:
            span.end(4.0)
        assert span.duration_s == 0.0


class TestCanonicalExport:
    def test_roots_sort_by_category_then_key_not_completion_order(self):
        tracer = Tracer()
        for category, key in (
            ("serve", "000002"), ("crawl", "zzz"),
            ("crawl", "aaa"), ("serve", "000001"),
        ):
            with tracer.span("s", key=key, category=category):
                pass
        assert [(s.category, s.key) for s in tracer.roots()] == [
            ("crawl", "aaa"), ("crawl", "zzz"),
            ("serve", "000001"), ("serve", "000002"),
        ]

    def test_jsonl_is_byte_stable_across_recording_orders(self):
        def record(tracer, order):
            for key in order:
                with tracer.span("crawl.app", key=key, t=1.0, k=key):
                    tracer.event("tick", t=2.0)

        forward, backward = Tracer(), Tracer()
        record(forward, ["a", "b", "c"])
        record(backward, ["c", "b", "a"])
        assert forward.to_jsonl() == backward.to_jsonl()

    def test_category_filter_excludes_schedule_metadata(self):
        tracer = Tracer()
        with tracer.span("crawl.app", key="a", category="crawl"):
            pass
        tracer.event("schedule.commit", category="schedule")
        assert '"schedule"' not in tracer.to_jsonl(categories=("crawl",))
        assert '"schedule"' in tracer.to_jsonl()

    def test_export_roundtrips_through_load_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("crawl.app", key="a", t=0.5, status="ok") as span:
            tracer.event("retry.attempt", t=0.6, attempt=0)
            span.end(1.5)
        path = tracer.export(tmp_path / "trace.jsonl")
        (root,) = load_trace(path)
        assert root["name"] == "crawl.app"
        assert root["t_end"] == 1.5
        assert root["events"][0]["attrs"]["attempt"] == 0
        # Canonical bytes: sorted keys, tight separators, one line.
        line = (tmp_path / "trace.jsonl").read_text().splitlines()[0]
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )


@pytest.fixture(scope="module")
def chaos_result():
    """A private fault_rate=0.2 pipeline (module-owned; serving mutates)."""
    return FrappePipeline(
        ScaleConfig(scale=0.01, master_seed=424242, fault_rate=0.2)
    ).run(sweep_unlabelled=False)


def test_trace_reconstructs_the_full_causal_chain(chaos_result, tmp_path):
    """retry → breaker transition → degradation rung → typed response."""
    observer = TracingObserver()
    service = make_service(
        chaos_result, ServiceConfig(breaker_failure_threshold=1)
    )
    apps = sorted(chaos_result.bundle.d_sample)[:20]
    with observation(observer):
        for app_id in apps:
            service.score(app_id)
    path = observer.tracer.export(tmp_path / "serve-trace.jsonl")
    roots = load_trace(path)
    chains = []
    for root in roots:
        if root["name"] != "serve.request":
            continue
        event_names = {event["name"] for _s, event in walk_events([root])}
        crawled = any(c["name"] == "crawl.app" for c in root["children"])
        if (
            crawled
            and "retry.attempt" in event_names
            and "retry.fault" in event_names
            and "breaker.transition" in event_names
            and root["attrs"].get("outcome") is not None
            and root["attrs"].get("rung") is not None
        ):
            chains.append(root)
    assert chains, (
        "no request span recorded the complete "
        "retry -> breaker -> rung -> response chain"
    )
    # The chain is causally ordered inside one request span: the fault
    # precedes the breaker transition, which precedes the span's close.
    root = chains[0]
    events = [event for _s, event in walk_events([root])]
    fault_t = min(
        e["t"] for e in events if e["name"] == "retry.fault"
    )
    transition_t = min(
        e["t"] for e in events if e["name"] == "breaker.transition"
    )
    assert fault_t <= transition_t
    # ... and the breaker genuinely tripped on the hair trigger.
    transitions = [
        (e["attrs"]["from_state"], e["attrs"]["to_state"])
        for e in events if e["name"] == "breaker.transition"
    ]
    assert ("closed", "open") in transitions
