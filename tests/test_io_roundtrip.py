"""Round-trip and integrity tests for the dataset export (repro.io).

Pins the v2 on-disk contract: what survives an export→load round trip
(labels, outcomes, permissions, precomputed aggregate features), what is
documented as lossy (profile posts come back as placeholders), and how
damage is reported (``DatasetFormatError`` with an actionable message,
never a raw JSON traceback).
"""

from __future__ import annotations

import json

import pytest

from repro.io import (
    DatasetFormatError,
    dataset_to_dict,
    export_dataset,
    load_dataset,
    migrate_dataset_v1_to_v2,
)


@pytest.fixture(scope="module")
def exported(pipeline_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "dataset.json"
    export_dataset(pipeline_result, path)
    return path


@pytest.fixture(scope="module")
def loaded(exported):
    return load_dataset(exported)


def test_roundtrip_labels_and_order(pipeline_result, loaded):
    records, labels, metadata = loaded
    bundle = pipeline_result.bundle
    ordered = sorted(bundle.d_sample)
    assert [r.app_id for r in records] == ordered
    assert labels == [bundle.label(a) for a in ordered]
    assert metadata["format_version"] == 2
    assert metadata["n_malicious"] == len(bundle.d_sample_malicious)
    assert metadata["n_benign"] == len(bundle.d_sample_benign)


def test_roundtrip_preserves_fields_and_outcomes(pipeline_result, loaded):
    records, _, _ = loaded
    originals = pipeline_result.bundle.records
    for record in records:
        original = originals[record.app_id]
        assert record.name == original.name
        assert record.category == original.category
        assert record.permissions == original.permissions
        assert record.observed_client_id == original.observed_client_id
        assert record.mau_observations == list(original.mau_observations)
        assert set(record.outcomes) == set(original.outcomes)
        for collection, outcome in original.outcomes.items():
            clone = record.outcomes[collection]
            assert clone.status == outcome.status
            assert clone.attempts == outcome.attempts
            assert clone.faults == list(outcome.faults)
            assert clone.elapsed_s == pytest.approx(outcome.elapsed_s)


def test_aggregate_features_ride_along(pipeline_result, exported):
    """The export carries the two non-recomputable aggregate features."""
    data = json.loads(exported.read_text())
    originals = pipeline_result.bundle.records
    extractor = pipeline_result.extractor
    for entry in data["records"][:20]:
        original = originals[entry["app_id"]]
        assert entry["external_link_ratio"] == pytest.approx(
            extractor.feature_value("external_link_ratio", original)
        )
        assert entry["name_matches_malicious"] == pytest.approx(
            extractor.feature_value("name_matches_malicious", original)
        )


def test_profile_posts_documented_lossy(pipeline_result, loaded):
    """Posts come back as count-many placeholders — the documented loss."""
    records, _, _ = loaded
    originals = pipeline_result.bundle.records
    for record in records:
        original = originals[record.app_id]
        assert len(record.profile_posts) == len(original.profile_posts)
        assert all(
            post == {"message": "", "link": None, "created_time": 0, "from": 0}
            for post in record.profile_posts
        )


def test_placeholder_posts_do_not_alias(loaded):
    """Regression: placeholders were once n references to ONE dict."""
    records, _, _ = loaded
    victim = next(r for r in records if len(r.profile_posts) >= 2)
    victim.profile_posts[0]["message"] = "mutated"
    assert victim.profile_posts[1]["message"] == ""


def test_v1_export_migrates_on_load(pipeline_result, tmp_path):
    v1 = dataset_to_dict(pipeline_result)
    del v1["records_sha256"]
    v1["format_version"] = 1
    path = tmp_path / "v1.json"
    path.write_text(json.dumps(v1))
    records, labels, metadata = load_dataset(path)
    assert metadata["format_version"] == 2
    assert "records_sha256" in metadata
    assert len(records) == len(labels) == len(v1["records"])


def test_migrate_rejects_non_v1(pipeline_result):
    v2 = dataset_to_dict(pipeline_result)
    with pytest.raises(DatasetFormatError, match="format_version 1"):
        migrate_dataset_v1_to_v2(v2)


def test_truncated_json_is_actionable(exported, tmp_path):
    broken = tmp_path / "truncated.json"
    broken.write_bytes(exported.read_bytes()[:-200])
    with pytest.raises(DatasetFormatError, match="truncated or corrupt"):
        load_dataset(broken)


def test_checksum_mismatch_detected(exported, tmp_path):
    data = json.loads(exported.read_text())
    data["records"][0]["name"] = "tampered-after-export"
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(data))
    with pytest.raises(DatasetFormatError, match="integrity check"):
        load_dataset(tampered)


def test_unsupported_version_rejected(exported, tmp_path):
    data = json.loads(exported.read_text())
    data["format_version"] = 99
    future = tmp_path / "future.json"
    future.write_text(json.dumps(data))
    with pytest.raises(DatasetFormatError, match="unsupported"):
        load_dataset(future)
