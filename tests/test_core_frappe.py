"""Tests for the FRAppE classifiers and the detection pipeline."""

import numpy as np
import pytest

from repro.core.features import ALL_FEATURES, ON_DEMAND_FEATURES, ROBUST_FEATURES
from repro.core.frappe import FrappeClassifier, frappe, frappe_lite, frappe_robust
from repro.core.validation import FlagValidator


class TestClassifierVariants:
    def test_feature_groups(self, pipeline_result):
        extractor = pipeline_result.extractor
        assert frappe_lite(extractor).features == ON_DEMAND_FEATURES
        assert frappe(extractor).features == ALL_FEATURES
        assert frappe_robust(extractor).features == ROBUST_FEATURES

    def test_empty_feature_set_rejected(self, pipeline_result):
        with pytest.raises(ValueError):
            FrappeClassifier(pipeline_result.extractor, features=())

    def test_unfitted_predict_raises(self, pipeline_result):
        with pytest.raises(RuntimeError):
            frappe(pipeline_result.extractor).predict([])


class TestTrainingAndPrediction:
    @pytest.fixture(scope="class")
    def fitted(self, pipeline_result):
        records, labels = pipeline_result.sample_records()
        classifier = frappe(pipeline_result.extractor).fit(records, labels)
        return classifier, records, np.asarray(labels)

    def test_training_accuracy_is_high(self, fitted):
        classifier, records, labels = fitted
        predictions = classifier.predict(records)
        assert (predictions == labels).mean() >= 0.95

    def test_predict_one_matches_batch(self, fitted):
        classifier, records, _ = fitted
        assert classifier.predict_one(records[0]) == bool(
            classifier.predict(records[:1])[0]
        )

    def test_decision_function_sign(self, fitted):
        classifier, records, _ = fitted
        decisions = classifier.decision_function(records[:20])
        predictions = classifier.predict(records[:20])
        assert np.array_equal((decisions >= 0).astype(int), predictions)

    def test_cross_validation_accuracy(self, pipeline_result):
        records, labels = pipeline_result.complete_records()
        report = frappe(pipeline_result.extractor).cross_validate(
            records, labels, rng=np.random.default_rng(0)
        )
        assert report.accuracy >= 0.95
        assert report.false_positive_rate <= 0.05

    def test_lite_beats_single_feature(self, pipeline_result):
        records, labels = pipeline_result.complete_records()
        lite = frappe_lite(pipeline_result.extractor).cross_validate(
            records, labels, rng=np.random.default_rng(1)
        )
        single = FrappeClassifier(
            pipeline_result.extractor, features=("has_category",)
        ).cross_validate(records, labels, rng=np.random.default_rng(1))
        assert lite.accuracy >= single.accuracy


class TestUnlabelledSweep:
    def test_flagged_new_disjoint_from_sample(self, pipeline_result):
        assert not (pipeline_result.flagged_new & pipeline_result.bundle.d_sample)

    def test_sweep_finds_stealth_malicious(self, pipeline_result):
        truth = pipeline_result.world.truth_malicious_ids()
        remaining = (
            truth
            - pipeline_result.bundle.d_sample_malicious
            - pipeline_result.world.piggybacked_ids()
        )
        found = pipeline_result.flagged_new & remaining
        assert len(found) >= 0.7 * len(remaining)

    def test_sweep_precision(self, pipeline_result):
        truth = pipeline_result.world.truth_malicious_ids()
        flagged = pipeline_result.flagged_new
        assert flagged
        precision = len(flagged & truth) / len(flagged)
        # At this tiny scale the flag set is small and churned benign
        # apps (deleted + bare summaries) cost precision; the benchmark
        # suite checks the ~96% figure at a realistic scale.
        assert precision >= 0.6


class TestValidation:
    def test_validation_covers_most_flags(self, pipeline_result):
        validation = pipeline_result.validation
        assert validation is not None
        # Small-scale flag sets carry more unvalidatable noise; the
        # benchmark suite checks the paper's ~98.5% at bench scale.
        assert validation.validated_fraction >= 0.7

    def test_table8_rows_cumulative_monotone(self, pipeline_result):
        rows = pipeline_result.validation.table8_rows()
        cumulative = [c for _t, _n, c in rows]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == len(pipeline_result.validation.validated)

    def test_unknown_complements_validated(self, pipeline_result):
        validation = pipeline_result.validation
        assert validation.unknown == validation.n_flagged - len(
            validation.validated
        )

    def test_deleted_technique_checks_the_graph(self, pipeline_result):
        validation = pipeline_result.validation
        world = pipeline_result.world
        for app_id in validation.validated_by["deleted_from_graph"]:
            assert not world.graph_api.exists(
                app_id, day=world.schedule.validation_day
            )

    def test_ground_truth_bound_matches_paper_regime(self, pipeline_result):
        validator = FlagValidator(pipeline_result.world, pipeline_result.bundle)
        bound = validator.ground_truth_bound()
        assert 0.0 <= bound <= 0.05  # paper: at most 2.6%

    def test_empty_flag_set(self, pipeline_result):
        validator = FlagValidator(pipeline_result.world, pipeline_result.bundle)
        result = validator.validate(set())
        assert result.n_flagged == 0
        assert result.validated_fraction == 0.0


class TestPipelineResultViews:
    def test_sample_records_alignment(self, pipeline_result):
        records, labels = pipeline_result.sample_records()
        assert len(records) == len(labels) == len(pipeline_result.bundle.d_sample)
        for record, label in zip(records, labels):
            assert pipeline_result.bundle.label(record.app_id) == label

    def test_complete_records_all_crawled(self, pipeline_result):
        records, _labels = pipeline_result.complete_records()
        assert records
        assert all(r.complete for r in records)
