"""Tests for the deterministic RNG registry."""

import numpy as np
from hypothesis import given, strategies as st

from repro.rng import RngRegistry, derive_seed


def test_same_seed_same_stream():
    a = RngRegistry(1).stream("x").integers(0, 1_000_000)
    b = RngRegistry(1).stream("x").integers(0, 1_000_000)
    assert int(a) == int(b)


def test_different_names_are_independent():
    registry = RngRegistry(1)
    a = registry.stream("a").integers(0, 10**9, size=16)
    b = registry.stream("b").integers(0, 10**9, size=16)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_advances():
    registry = RngRegistry(3)
    first = registry.stream("s").integers(0, 10**9)
    second = registry.stream("s").integers(0, 10**9)
    # Same object: the second draw continues the stream.
    assert registry.stream("s") is registry.stream("s")
    # Overwhelmingly likely to differ; equal would mean a reset.
    assert (int(first), int(second)) != (int(second), int(first)) or first != second


def test_fresh_restarts_the_stream():
    registry = RngRegistry(5)
    first = registry.stream("s").integers(0, 10**9)
    restarted = registry.fresh("s").integers(0, 10**9)
    assert int(first) == int(restarted)


def test_spawn_is_deterministic_and_independent():
    child_a = RngRegistry(9).spawn("child")
    child_b = RngRegistry(9).spawn("child")
    assert child_a.master_seed == child_b.master_seed
    assert child_a.master_seed != 9


def test_adding_a_stream_does_not_perturb_others():
    registry_one = RngRegistry(11)
    value_before = registry_one.stream("keep").integers(0, 10**9)

    registry_two = RngRegistry(11)
    registry_two.stream("new-subsystem").integers(0, 10**9)  # extra draw
    value_after = registry_two.stream("keep").integers(0, 10**9)
    assert int(value_before) == int(value_after)


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=30))
def test_derive_seed_is_stable_and_in_range(seed, name):
    value = derive_seed(seed, name)
    assert value == derive_seed(seed, name)
    assert 0 <= value < 2**64


@given(st.integers(min_value=0, max_value=1000))
def test_derive_seed_differs_across_names(seed):
    assert derive_seed(seed, "a") != derive_seed(seed, "b")
