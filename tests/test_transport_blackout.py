"""Sustained platform outages: seeded blackout windows (PR 8).

Blackouts are a *distinct* fault kind from the per-call draws: a window
is platform-wide state on the global simulated clock, it fails every
request started inside it (even at ``fault_rate=0``), it consumes no
per-call randomness, and the default window durations sit below the
breaker cooldown — so breakers opened by an outage open once and close
once instead of flapping per call.
"""

from __future__ import annotations

import pytest

from repro.config import ScaleConfig
from repro.crawler.crawler import AppCrawler, make_crawler
from repro.ecosystem.simulation import run_simulation
from repro.obs import TracingObserver, load_trace, observation, walk_events
from repro.platform.transport import (
    FaultPlan,
    FaultyTransport,
    PlatformBlackoutError,
    TransientGraphApiError,
    draw_blackout_windows,
)

WORLD_SEED = 98765


@pytest.fixture(scope="module")
def small_world():
    """A private world: blackout crawls consume installer RNG draws."""
    return run_simulation(ScaleConfig(scale=0.01, master_seed=WORLD_SEED))


def faulty_crawler(world, windows, fault_rate=0.0) -> AppCrawler:
    plan = FaultPlan(fault_rate=fault_rate, seed=7, blackout_windows=windows)
    transport = FaultyTransport(world.graph_api, world.installer, plan)
    return AppCrawler(world, transport=transport)


def live_app_ids(world, count):
    return [
        app.app_id
        for app in sorted(world.registry.all_apps(), key=lambda a: a.app_id)
        if not app.is_deleted()
    ][:count]


class TestWindowDrawing:
    def test_deterministic(self):
        first = draw_blackout_windows(2012, 4)
        second = draw_blackout_windows(2012, 4)
        assert first == second
        assert first != draw_blackout_windows(2013, 4)

    def test_sorted_non_overlapping_and_durations_below_breaker_cooldown(self):
        windows = draw_blackout_windows(99, 8)
        assert len(windows) == 8
        previous_end = -1.0
        for start, end in windows:
            assert start > previous_end
            # The default duration range (60-150 s) sits below the
            # breaker cooldown (180 s): a breaker opened by the outage
            # probes *after* the platform is back.  No flapping.
            assert 60.0 <= end - start <= 150.0
            previous_end = end

    def test_zero_count_is_empty(self):
        assert draw_blackout_windows(1, 0) == ()

    def test_plan_rejects_malformed_windows(self):
        with pytest.raises(ValueError):
            FaultPlan(blackout_windows=((50.0, 40.0),))
        with pytest.raises(ValueError):
            FaultPlan(blackout_windows=((0.0, 60.0), (30.0, 90.0)))

    def test_blackout_at_is_closed_open(self):
        plan = FaultPlan(blackout_windows=((100.0, 200.0),))
        assert plan.blackout_at(99.9) is None
        assert plan.blackout_at(100.0) == (100.0, 200.0)
        assert plan.blackout_at(199.9) == (100.0, 200.0)
        assert plan.blackout_at(200.0) is None  # the window just closed


class TestInjection:
    def test_blackout_fails_requests_even_at_fault_rate_zero(self, small_world):
        crawler = faulty_crawler(small_world, ((0.0, 10_000.0),))
        app_id = live_app_ids(small_world, 1)[0]
        record = crawler.crawl_app(app_id)
        assert crawler.stats.injected.get("blackout", 0) > 0
        assert not record.summary_ok

    def test_no_injection_outside_windows(self, small_world):
        crawler = faulty_crawler(small_world, ((1e9, 1e9 + 60.0),))
        app_id = live_app_ids(small_world, 1)[0]
        record = crawler.crawl_app(app_id)
        assert crawler.stats.fault_count() == 0
        assert record.summary_ok

    def test_blackout_consumes_no_call_index(self, small_world):
        """A request failed by the outage must not advance the per-call
        fault sequence: the same crawl replayed after the window sees
        exactly the per-call faults it would have seen without it."""
        crawler = faulty_crawler(small_world, ((0.0, 10_000.0),))
        app_id = live_app_ids(small_world, 1)[0]
        crawler.crawl_app(app_id)
        assert crawler.transport.call_index_items() == []

    def test_error_carries_resume_time(self, small_world):
        transport = faulty_crawler(
            small_world, ((0.0, 321.0),)
        ).transport
        with pytest.raises(PlatformBlackoutError) as excinfo:
            transport.summary(live_app_ids(small_world, 1)[0])
        assert excinfo.value.resume_at == 321.0
        assert excinfo.value.kind == "blackout"
        assert isinstance(excinfo.value, TransientGraphApiError)

    def test_active_blackout_polling_surface(self, small_world):
        crawler = faulty_crawler(small_world, ((0.0, 500.0),))
        assert crawler.transport.active_blackout() == (0.0, 500.0)
        crawler.stats.add_wait(500.0)
        assert crawler.transport.active_blackout() is None


class TestBreakerInterplay:
    def test_breakers_open_once_and_close_after_the_window(
        self, small_world, tmp_path
    ):
        """The chaos property the window durations were chosen for: an
        outage opens each endpoint breaker at most once, the cooldown
        outlasts the window, and the first half-open probe finds the
        platform healthy — open once, close once, no per-call flap."""
        # A ~150 s window: several apps' crawls start inside it.
        windows = ((0.0, 150.0),)
        crawler = faulty_crawler(small_world, windows)
        observer = TracingObserver()
        with observation(observer):
            for app_id in live_app_ids(small_world, 12):
                crawler.crawl_app(app_id)
        assert crawler.stats.injected.get("blackout", 0) > 0
        roots = load_trace(observer.tracer.export(tmp_path / "trace.jsonl"))
        transitions: dict[str, list[tuple[str, str]]] = {}
        for _span, event in walk_events(roots):
            if event["name"] != "breaker.transition":
                continue
            transitions.setdefault(event["attrs"]["endpoint"], []).append(
                (event["attrs"]["from_state"], event["attrs"]["to_state"])
            )
        assert transitions, "the outage never opened a breaker"
        for endpoint, seen in transitions.items():
            opens = seen.count(("closed", "open"))
            reopens = seen.count(("half_open", "open"))
            closes = seen.count(("half_open", "closed"))
            assert opens == 1, (
                f"{endpoint}: breaker opened {opens} times (flapping)"
            )
            assert reopens == 0, (
                f"{endpoint}: half-open probe failed {reopens} times — "
                "the probe landed inside the window"
            )
            assert closes == 1, f"{endpoint}: breaker never closed"
        # After the dust settles every breaker is closed again.
        for breaker in crawler.executor.breakers.values():
            assert breaker.state == breaker.CLOSED

    def test_later_crawls_recover_fully(self, small_world):
        crawler = faulty_crawler(small_world, ((0.0, 120.0),))
        apps = live_app_ids(small_world, 12)
        for app_id in apps:
            record = crawler.crawl_app(app_id)
        # The last app starts long after the window: clean crawl.
        assert record.summary_ok


class TestConfigWiring:
    def test_scale_config_draws_windows_into_the_fingerprint(self):
        config = ScaleConfig(
            scale=0.01, master_seed=424242, fault_rate=0.0, blackouts=2
        )
        world = run_simulation(config)
        crawler = make_crawler(world)
        windows = crawler.transport.plan.blackout_windows
        assert len(windows) == 2
        fingerprint = crawler.checkpoint_fingerprint()
        assert fingerprint["fault_plan"]["blackout_windows"] == [
            list(w) for w in windows
        ]

    def test_blackouts_zero_keeps_the_direct_transport(self):
        world = run_simulation(
            ScaleConfig(scale=0.01, master_seed=424242, fault_rate=0.0)
        )
        crawler = make_crawler(world)
        assert not hasattr(crawler.transport, "plan")
