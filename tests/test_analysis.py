"""Tests for distribution helpers and report rendering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.distributions import (
    empirical_cdf,
    fraction_above,
    fraction_at_least,
    fraction_at_most,
    fraction_below,
)
from repro.analysis.report import ExperimentReport, render_table

_VALUES = st.lists(st.floats(-100, 100), max_size=40)
_THRESH = st.floats(-100, 100)


class TestDistributions:
    def test_empirical_cdf_steps(self):
        x, y = empirical_cdf([3, 1, 2])
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert y.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_inputs(self):
        x, y = empirical_cdf([])
        assert len(x) == 0
        assert fraction_above([], 0) == 0.0
        assert fraction_at_most([], 0) == 0.0

    @given(values=_VALUES, threshold=_THRESH)
    def test_complementarity(self, values, threshold):
        above = fraction_above(values, threshold)
        at_most = fraction_at_most(values, threshold)
        if values:
            assert above + at_most == pytest.approx(1.0)
        below = fraction_below(values, threshold)
        at_least = fraction_at_least(values, threshold)
        if values:
            assert below + at_least == pytest.approx(1.0)

    @given(values=_VALUES, threshold=_THRESH)
    def test_monotone_in_threshold(self, values, threshold):
        assert fraction_above(values, threshold) <= fraction_above(
            values, threshold - 1.0
        )

    @given(values=_VALUES)
    def test_cdf_is_monotone(self, values):
        _x, y = empirical_cdf(values)
        assert np.all(np.diff(y) >= 0)


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # all lines equal width

    def test_experiment_report_rows_and_render(self):
        report = ExperimentReport("t1", "Title", notes="n")
        report.add("metric", 1, 2)
        report.add_fraction("frac", 0.5, 0.25)
        text = report.render()
        assert "t1: Title" in text
        assert "50.0%" in text and "25.0%" in text
        assert "note: n" in text
        assert report.measured_by_metric()["metric"] == "2"
