"""Tests for the bit.ly-style shortener."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.urlinfra.shortener import Shortener


@pytest.fixture()
def shortener(rng):
    return Shortener(rng)


def test_shorten_expand_roundtrip(shortener):
    short = shortener.shorten("http://example.com/page")
    assert short.startswith("http://bit.ly/")
    assert shortener.expand(short) == "http://example.com/page"


def test_shorten_reuses_code_for_same_url(shortener):
    a = shortener.shorten("http://example.com/x")
    b = shortener.shorten("http://example.com/x")
    assert a == b
    assert len(shortener) == 1


def test_shorten_without_reuse_mints_fresh_codes(shortener):
    a = shortener.shorten("http://example.com/x")
    b = shortener.shorten("http://example.com/x", reuse=False)
    assert a != b
    assert shortener.expand(a) == shortener.expand(b)


def test_click_accounting(shortener):
    short = shortener.shorten("http://example.com/x")
    shortener.record_click(short, 10, from_facebook=True)
    shortener.record_click(short, 3, from_facebook=False)
    assert shortener.clicks(short) == 13
    link = shortener.link(short)
    assert link.clicks_facebook == 10
    assert link.clicks_external == 3


def test_unresolvable_links_fail_expand_but_keep_clicks(shortener):
    short = shortener.shorten("http://example.com/x")
    shortener.record_click(short, 5)
    shortener.make_unresolvable(short)
    assert shortener.expand(short) is None
    assert shortener.clicks(short) == 5


def test_owns_and_unknown_urls(shortener):
    short = shortener.shorten("http://example.com/x")
    assert shortener.owns(short)
    assert shortener.owns(short.replace("http://", "https://"))
    assert not shortener.owns("http://bit.ly/doesnotexist")
    assert not shortener.owns("http://example.com/x")
    with pytest.raises(KeyError):
        shortener.clicks("http://bit.ly/doesnotexist")


def test_custom_domain(rng):
    jmp = Shortener(rng, domain="j.mp")
    short = jmp.shorten("http://example.com")
    assert short.startswith("http://j.mp/")


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=20))
def test_total_clicks_is_sum(counts):
    shortener = Shortener(np.random.default_rng(0))
    short = shortener.shorten("http://example.com/x")
    for count in counts:
        shortener.record_click(short, count)
    assert shortener.clicks(short) == sum(counts)


def test_many_links_have_distinct_codes(rng):
    shortener = Shortener(rng)
    shorts = {shortener.shorten(f"http://example.com/{i}") for i in range(500)}
    assert len(shorts) == 500
