"""Adaptive continuous batching and the overlapped service core.

Contracts under test:

* :func:`plan_batch` is a pure, deterministic function of queue state:
  the batch grows with depth, caps at ``batch_max``, and shrinks while
  the tightest deadline in the candidate batch lacks the headroom to
  absorb serving the whole batch.
* ``batch_max=1`` keeps the service on the literal historical unbatched
  path — the ``overlap`` flag is inert there, and runs are byte-stable
  (responses, summary, canonical trace export).
* At ``batch_max>1`` the adaptive service is deterministic at a fixed
  seed, reaches full batches under overload while still varying the
  size, and finishes no later (simulated) with overlap than without.
* Under a rollout, per-model sub-batch scoring returns exactly what
  record-by-record scoring with each request's assigned model returns.
"""

from __future__ import annotations

import math

import pytest

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.obs import TracingObserver, observation
from repro.service import (
    BULK,
    INTERACTIVE,
    SERVED,
    AdmissionQueue,
    LoadProfile,
    ScoreRequest,
    estimate_capacity_rps,
    generate_requests,
    make_service,
)
from repro.service.admission import plan_batch


@pytest.fixture(scope="module")
def clean_result():
    """A private fault-free pipeline (module-owned; serving mutates it)."""
    return FrappePipeline(
        ScaleConfig(scale=0.01, master_seed=424242, fault_rate=0.0)
    ).run(sweep_unlabelled=False)


def request(app_id, arrival=0.0, deadline=600.0, priority=INTERACTIVE, seq=0):
    return ScoreRequest(
        app_id=app_id, arrival_s=arrival, deadline_s=deadline,
        priority=priority, sequence=seq,
    )


def filled_queue(specs, depth=64):
    queue = AdmissionQueue(max_depth=depth)
    for seq, spec in enumerate(specs):
        assert queue.offer(request(**spec, seq=seq)) == []
    return queue


# -- plan_batch ---------------------------------------------------------------


class TestPlanBatch:
    def test_empty_and_single_queue_plan_one(self):
        queue = AdmissionQueue(max_depth=8)
        plan = plan_batch(queue, 0.0, batch_max=8, service_estimate_s=5.0)
        assert (plan.size, plan.depth, plan.reason) == (1, 0, "depth")
        assert plan.headroom_s == math.inf
        queue.offer(request("a"))
        plan = plan_batch(queue, 0.0, batch_max=8, service_estimate_s=5.0)
        assert (plan.size, plan.depth, plan.reason) == (1, 1, "depth")

    def test_batch_grows_with_depth_up_to_the_cap(self):
        for depth, want_size, want_reason in (
            (3, 3, "depth"), (8, 8, "max"), (20, 8, "max"),
        ):
            queue = filled_queue([{"app_id": f"a{i}"} for i in range(depth)])
            plan = plan_batch(queue, 0.0, batch_max=8, service_estimate_s=5.0)
            assert (plan.size, plan.depth, plan.reason) == (
                want_size, depth, want_reason
            )

    def test_tight_headroom_shrinks_the_batch(self):
        # Four queued, but the head's deadline allows only ~2 service
        # times of slack: a 4-batch would blow it, a 2-batch fits.
        queue = filled_queue(
            [{"app_id": "urgent", "deadline": 12.0}]
            + [{"app_id": f"lax{i}"} for i in range(3)]
        )
        plan = plan_batch(queue, 0.0, batch_max=8, service_estimate_s=5.0)
        assert (plan.size, plan.reason) == (2, "headroom")
        assert plan.headroom_s == pytest.approx(12.0)

    def test_expired_head_degenerates_to_one(self):
        queue = filled_queue(
            [{"app_id": "dead", "deadline": 1.0}]
            + [{"app_id": f"lax{i}"} for i in range(5)]
        )
        plan = plan_batch(queue, 100.0, batch_max=8, service_estimate_s=5.0)
        assert (plan.size, plan.reason) == (1, "headroom")

    def test_headroom_tracks_the_tightest_not_the_head(self):
        # The urgent request sits behind a lax one in the same lane;
        # the prefix minimum must still see it.
        queue = filled_queue([
            {"app_id": "lax", "deadline": 600.0},
            {"app_id": "urgent", "deadline": 12.0},
            {"app_id": "lax2", "deadline": 600.0},
        ])
        plan = plan_batch(queue, 0.0, batch_max=8, service_estimate_s=5.0)
        assert (plan.size, plan.reason) == (2, "headroom")

    def test_planning_is_pure_and_repeatable(self):
        queue = filled_queue([{"app_id": f"a{i}"} for i in range(6)])
        before = len(queue)
        plans = [
            plan_batch(queue, 0.0, batch_max=4, service_estimate_s=5.0)
            for _ in range(3)
        ]
        assert len(queue) == before
        assert plans[0] == plans[1] == plans[2]
        assert plans[0].size == 4 and plans[0].reason == "max"


# -- batch_max=1: the historical path, byte for byte --------------------------


def _overload_requests(result, n_requests=48, seed=7):
    capacity = estimate_capacity_rps(result.world.schedule)
    profile = LoadProfile(
        n_requests=n_requests,
        rate_rps=capacity * 3.0,
        interactive_deadline_s=600.0,
        bulk_deadline_s=1800.0,
        pool_size=None,
        seed=seed,
    )
    return generate_requests(sorted(result.bundle.d_sample), profile)


def _serve(result, config, observer=None, n_requests=48):
    requests = _overload_requests(result, n_requests=n_requests)
    with observation(observer):
        service = make_service(result, config)
        report = service.serve(requests)
    return report


def _image(report):
    return [
        {**vars(response), "record": None} for response in report.responses
    ]


def test_batch_max_one_is_byte_identical_regardless_of_overlap(clean_result):
    """The overlap flag (and all adaptive machinery) is inert at
    ``batch_max=1``: responses, summary, and the canonical trace export
    are byte-identical with it on or off."""
    on_obs, off_obs = TracingObserver(), TracingObserver()
    with_overlap = _serve(
        clean_result, ServiceConfig(batch_max=1, overlap=True), on_obs
    )
    without = _serve(
        clean_result, ServiceConfig(batch_max=1, overlap=False), off_obs
    )
    assert _image(with_overlap) == _image(without)
    assert with_overlap.summary() == without.summary()
    assert with_overlap.transport == without.transport
    assert on_obs.tracer.to_jsonl() == off_obs.tracer.to_jsonl()
    # the historical path never drains more than one request per tick
    assert all(r.batch_size == 1 for r in with_overlap.responses)


def test_adaptive_serving_is_deterministic_at_a_fixed_seed(clean_result):
    config = ServiceConfig(batch_max=8, max_queue_depth=64)
    first_obs, second_obs = TracingObserver(), TracingObserver()
    first = _serve(clean_result, config, first_obs)
    second = _serve(clean_result, config, second_obs)
    assert _image(first) == _image(second)
    assert first.summary() == second.summary()
    assert first_obs.tracer.to_jsonl() == second_obs.tracer.to_jsonl()


def test_overload_drives_full_and_varied_batches(clean_result):
    """Under 3x overload the controller reaches ``batch_max`` and the
    drained size actually varies over the run (it is adaptive, not a
    fixed drain)."""
    report = _serve(
        clean_result, ServiceConfig(batch_max=8, max_queue_depth=64)
    )
    sizes = {r.batch_size for r in report.responses}
    assert max(sizes) == 8
    assert len(sizes) > 1
    assert report.outcome_counts().get(SERVED, 0) > 0


def test_batch_planned_events_land_on_the_trace(clean_result):
    observer = TracingObserver()
    _serve(
        clean_result,
        ServiceConfig(batch_max=8, max_queue_depth=64),
        observer,
    )
    histogram = observer.metrics.histogram_of("serve_batch_planned")
    assert histogram is not None and histogram.count > 0
    planned = [
        event
        for root in observer.tracer.roots(categories=("serve",))
        for event in root.events
        if event.name == "serve.batch_planned"
    ]
    assert planned
    assert {event.attrs["reason"] for event in planned} <= {
        "depth", "max", "headroom",
    }


def test_overlap_finishes_no_later_than_serialized(clean_result):
    """Overlapping the score stage with the next tick's crawl I/O can
    only shorten (never lengthen) the simulated run."""
    overlapped = _serve(
        clean_result,
        ServiceConfig(batch_max=8, max_queue_depth=64, overlap=True),
    )
    serialized = _serve(
        clean_result,
        ServiceConfig(batch_max=8, max_queue_depth=64, overlap=False),
    )
    assert overlapped.elapsed_s <= serialized.elapsed_s + 1e-9
    # the same offered workload is fully answered either way
    assert len(overlapped.responses) == len(serialized.responses)


def test_deadline_budgets_still_respected_under_batching(clean_result):
    """A request whose deadline expired in the queue still gets the
    typed ``deadline`` outcome from a batched tick."""
    report = _serve(
        clean_result,
        ServiceConfig(batch_max=8, max_queue_depth=64),
        n_requests=64,
    )
    for response in report.responses:
        assert response.outcome in ("served", "overloaded", "deadline")


# -- rollout sub-batches ------------------------------------------------------


def test_rollout_sub_batches_match_record_by_record(clean_result):
    """Per-model-version sub-batch scoring is exactly record-by-record
    scoring with each request's assigned model."""
    from repro.cli import _build_canary_rollout

    config = ServiceConfig(batch_max=8, max_queue_depth=64)
    service = make_service(clean_result, config)
    service.rollout = _build_canary_rollout(service, "bad")

    apps = sorted(clean_result.bundle.d_sample)[:12]
    requests = [request(a, seq=i) for i, a in enumerate(apps)]
    records = [service._crawl_request(r) for r in requests]
    staged = [(r, None) for r in requests]
    live = [(i, 0.0, "miss") for i in range(len(requests))]

    got = service._score_live_batch(staged, live, records)

    expected = []
    for req, rec in zip(requests, records):
        cascade, version, shadow = service._select_model(req)
        prediction, margin, tier = cascade.score_record(rec)
        shadow_prediction = (
            shadow.score_record(rec)[0] if shadow is not None else None
        )
        expected.append((prediction, margin, tier, version, shadow_prediction))

    assert len(got) == len(expected)
    for (gp, gm, gt, gv, gs), (ep, em, et, ev, es) in zip(got, expected):
        assert (gp, gt, gv, gs) == (ep, et, ev, es)
        assert gm == pytest.approx(em, abs=1e-12)
    # both models actually appeared (the sub-batching was exercised)
    assert len({v for _, _, _, v, _ in got}) >= 2


def test_rollout_serve_smoke_under_adaptive_batching(clean_result):
    """A full adaptive serve with a live rollout completes with typed
    outcomes and per-version tallies."""
    from repro.cli import _build_canary_rollout

    requests = _overload_requests(clean_result, n_requests=40)
    service = make_service(
        clean_result, ServiceConfig(batch_max=8, max_queue_depth=64)
    )
    service.rollout = _build_canary_rollout(service, "good")
    report = service.serve(requests)
    assert len(report.responses) == 40
    assert report.outcome_counts().get(SERVED, 0) > 0
    assert set(report.version_outcome_counts()) >= {1}


# -- fused scoring over mixed tiers -------------------------------------------


def test_fused_score_batch_matches_per_record_on_degraded_records():
    """With transient faults the batch mixes tiers; the fused shared
    matrix must route and score each record exactly like
    ``score_record``."""
    result = FrappePipeline(
        ScaleConfig(scale=0.01, master_seed=424242, fault_rate=0.25)
    ).run(sweep_unlabelled=False)
    records, labels = result.sample_records()
    from repro.core.frappe import FrappeCascade

    cascade = FrappeCascade(result.extractor).fit(records, labels)
    tiers = {cascade.tier_of(record) for record in records}
    assert len(tiers) > 1, "fault run should produce mixed tiers"
    scored = cascade.score_batch(records)
    for record, (prediction, margin, tier) in zip(records, scored):
        want_p, want_m, want_t = cascade.score_record(record)
        assert (prediction, tier) == (want_p, want_t)
        assert margin == pytest.approx(want_m, abs=1e-12)
