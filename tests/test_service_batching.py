"""Batched serving: drain-compatible requests, score them in one pass.

The contract has two halves.  **Exactness**: ``batch_size=1`` takes the
literal historical pop-one/handle-one path, ``pop_batch(1)`` is exactly
``[pop()]``, and ``FrappeCascade.score_batch`` routes and scores each
record bit-identically to ``score_record``.  **Batching**: with
``batch_size>1`` a tick drains up to that many queued requests in
strict priority order — filling across lanes, exactly the order that
many consecutive ``pop`` calls would return — pays the scoring cost
once, and stamps every response of the batch with the drained size.
"""

from __future__ import annotations

import pytest

from repro.config import ScaleConfig, ServiceConfig
from repro.core.frappe import FrappeCascade
from repro.core.pipeline import FrappePipeline
from repro.service import (
    BULK,
    INTERACTIVE,
    SERVED,
    AdmissionQueue,
    ScoreRequest,
    make_service,
)


@pytest.fixture(scope="module")
def clean_result():
    """A private fault-free pipeline (module-owned; serving mutates it)."""
    return FrappePipeline(
        ScaleConfig(scale=0.01, master_seed=424242, fault_rate=0.0)
    ).run(sweep_unlabelled=False)


def request(app_id, priority=INTERACTIVE, sequence=0):
    return ScoreRequest(
        app_id=app_id, arrival_s=0.0, deadline_s=600.0,
        priority=priority, sequence=sequence,
    )


# -- AdmissionQueue.pop_batch ------------------------------------------------


class TestPopBatch:
    def queue(self, depth: int = 16) -> AdmissionQueue:
        return AdmissionQueue(max_depth=depth)

    def fill(self, queue, specs):
        for sequence, (app_id, priority) in enumerate(specs):
            assert queue.offer(request(app_id, priority, sequence)) == []

    def test_pop_batch_one_is_exactly_pop(self):
        specs = [("a", BULK), ("b", INTERACTIVE), ("c", INTERACTIVE)]
        via_pop, via_batch = self.queue(), self.queue()
        self.fill(via_pop, specs)
        self.fill(via_batch, specs)
        while len(via_pop):
            assert via_batch.pop_batch(1) == [via_pop.pop()]
        assert len(via_batch) == 0

    def test_batch_fills_across_lanes_in_priority_order(self):
        """A batch drains lanes in strict priority order, FIFO within."""
        queue = self.queue()
        self.fill(queue, [("a", BULK), ("b", INTERACTIVE), ("c", BULK)])
        batch = queue.pop_batch(10)
        assert [r.app_id for r in batch] == ["b", "a", "c"]
        assert len(queue) == 0

    def test_batch_limit_respected_across_lanes(self):
        """The cross-lane fill stops exactly at the limit."""
        queue = self.queue()
        self.fill(queue, [("a", BULK), ("b", INTERACTIVE), ("c", BULK)])
        assert [r.app_id for r in queue.pop_batch(2)] == ["b", "a"]
        assert [r.app_id for r in queue.pop_batch(2)] == ["c"]

    def test_batch_order_is_exactly_repeated_pop(self):
        """pop_batch(k) returns what k consecutive pop() calls would."""
        specs = [
            ("a", BULK), ("b", INTERACTIVE), ("c", BULK),
            ("d", INTERACTIVE), ("e", BULK),
        ]
        via_pop, via_batch = self.queue(), self.queue()
        self.fill(via_pop, specs)
        self.fill(via_batch, specs)
        reference = [via_pop.pop() for _ in range(len(specs))]
        assert via_batch.pop_batch(len(specs)) == reference

    def test_shed_semantics_preserved_after_cross_lane_drain(self):
        """Draining across lanes does not disturb admission/shedding."""
        queue = self.queue(depth=2)
        self.fill(queue, [("a", BULK), ("b", INTERACTIVE)])
        # full queue: a bulk arrival is itself shed, an interactive
        # arrival displaces the youngest bulk entry — unchanged
        rejected = queue.offer(request("c", BULK, 2))
        assert [r.app_id for r in rejected] == ["c"]
        evicted = queue.offer(request("d", INTERACTIVE, 3))
        assert [r.app_id for r in evicted] == ["a"]
        assert [r.app_id for r in queue.pop_batch(10)] == ["b", "d"]
        assert queue.snapshot()["total_shed"] == 2

    def test_batch_preserves_fifo_order_within_a_lane(self):
        queue = self.queue()
        self.fill(queue, [(f"app{i}", INTERACTIVE) for i in range(5)])
        batch = queue.pop_batch(3)
        assert [r.app_id for r in batch] == ["app0", "app1", "app2"]
        assert [r.app_id for r in queue.pop_batch(3)] == ["app3", "app4"]

    def test_empty_queue_raises(self):
        with pytest.raises(IndexError):
            self.queue().pop_batch(4)

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            self.queue().pop_batch(0)


# -- FrappeCascade.score_batch ----------------------------------------------


def test_score_batch_of_one_is_bit_identical(clean_result):
    records, labels = clean_result.sample_records()
    cascade = FrappeCascade(clean_result.extractor).fit(records, labels)
    for record in records[:20]:
        assert cascade.score_batch([record]) == [cascade.score_record(record)]


def test_score_batch_matches_score_record(clean_result):
    """Batched scoring routes and decides exactly like per-record scoring.

    Predictions and tiers are equal; margins agree to float noise only
    (a multi-row BLAS matmul and a single-row matvec round differently
    in the last ulp), which is why the service's bit-identity contract
    is stated at batch size 1.
    """
    records, labels = clean_result.sample_records()
    cascade = FrappeCascade(clean_result.extractor).fit(records, labels)
    batch = records[:40]
    scored = cascade.score_batch(batch)
    reference = [cascade.score_record(record) for record in batch]
    for (got_p, got_m, got_t), (want_p, want_m, want_t) in zip(scored, reference):
        assert (got_p, got_t) == (want_p, want_t)
        assert got_m == pytest.approx(want_m, abs=1e-12)


# -- the batched service ----------------------------------------------------


def _serve(result, batch_size, app_ids):
    service = make_service(result, ServiceConfig(batch_size=batch_size))
    requests = [request(a, sequence=i) for i, a in enumerate(app_ids)]
    return service, service.serve(requests)


def test_unbatched_serving_is_deterministic(clean_result):
    apps = sorted(clean_result.bundle.d_sample)[:12]
    _, first = _serve(clean_result, 1, apps)
    _, second = _serve(clean_result, 1, apps)

    def image(report):
        return [
            {**vars(response), "record": None}
            for response in report.responses
        ]

    assert image(first) == image(second)
    assert all(r.batch_size == 1 for r in first.responses)


def test_batched_ticks_drain_and_stamp_the_batch(clean_result):
    apps = sorted(clean_result.bundle.d_sample)[:12]
    _, report = _serve(clean_result, 4, apps)
    assert len(report.responses) == len(apps)
    # all requests share arrival 0, so the queue is deep from the first
    # tick and batches of the configured size must occur
    assert max(r.batch_size for r in report.responses) == 4
    assert all(1 <= r.batch_size <= 4 for r in report.responses)
    assert report.outcome_counts()[SERVED] == len(apps)


def test_batched_verdicts_match_the_batch_classifier(clean_result):
    apps = sorted(clean_result.bundle.d_sample)[:12]
    service, report = _serve(clean_result, 4, apps)
    cascade = service._cascade
    for response in report.responses:
        assert response.outcome == SERVED
        assert response.record is not None
        expected = int(cascade.predict([response.record])[0])
        assert response.verdict == bool(expected)


def test_batch_size_one_and_batched_agree_on_verdicts(clean_result):
    apps = sorted(clean_result.bundle.d_sample)[:12]
    _, unbatched = _serve(clean_result, 1, apps)
    _, batched = _serve(clean_result, 4, apps)
    by_app_unbatched = {r.app_id: r.verdict for r in unbatched.responses}
    by_app_batched = {r.app_id: r.verdict for r in batched.responses}
    assert by_app_batched == by_app_unbatched
