"""Tests for the edit distances (including hypothesis properties)."""

import pytest
from hypothesis import given, strategies as st

from repro.text.editdist import (
    damerau_levenshtein,
    levenshtein,
    name_similarity,
    unrestricted_damerau_levenshtein,
)

_TEXT = st.text(alphabet="abcdef ", max_size=12)


class TestKnownValues:
    def test_farmville_typosquat(self):
        assert damerau_levenshtein("FarmVille", "FarmVile") == 1

    def test_transposition_counts_once(self):
        assert levenshtein("ab", "ba") == 2
        assert damerau_levenshtein("ab", "ba") == 1
        assert unrestricted_damerau_levenshtein("ab", "ba") == 1

    def test_osa_vs_unrestricted_divergence(self):
        # The classic example where OSA > true DL: 'ca' -> 'abc'.
        assert damerau_levenshtein("ca", "abc") == 3
        assert unrestricted_damerau_levenshtein("ca", "abc") == 2

    def test_empty_strings(self):
        assert levenshtein("", "") == 0
        assert damerau_levenshtein("", "abc") == 3
        assert unrestricted_damerau_levenshtein("abc", "") == 3

    def test_substitution(self):
        assert damerau_levenshtein("kitten", "sitten") == 1

    def test_classic_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3


@pytest.mark.parametrize(
    "distance",
    [levenshtein, damerau_levenshtein, unrestricted_damerau_levenshtein],
)
class TestSharedProperties:
    @given(a=_TEXT, b=_TEXT)
    def test_symmetry(self, distance, a, b):
        assert distance(a, b) == distance(b, a)

    @given(a=_TEXT)
    def test_identity(self, distance, a):
        assert distance(a, a) == 0

    @given(a=_TEXT, b=_TEXT)
    def test_bounds(self, distance, a, b):
        d = distance(a, b)
        assert 0 <= d <= max(len(a), len(b))
        if a != b:
            assert d >= 1
        # at least the length difference
        assert d >= abs(len(a) - len(b))


@given(a=_TEXT, b=_TEXT, c=_TEXT)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@given(a=_TEXT, b=_TEXT)
def test_distance_ordering(a, b):
    """More permissive edit sets can only shrink the distance."""
    assert unrestricted_damerau_levenshtein(a, b) <= damerau_levenshtein(a, b)
    assert damerau_levenshtein(a, b) <= levenshtein(a, b)


@given(a=_TEXT, b=_TEXT)
def test_name_similarity_range(a, b):
    s = name_similarity(a, b)
    assert 0.0 <= s <= 1.0
    if a == b:
        assert s == 1.0


def test_name_similarity_normalisation():
    # one edit over nine characters
    assert name_similarity("FarmVille", "FarmVile") == pytest.approx(1 - 1 / 9)
