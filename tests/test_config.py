"""Tests for the paper-constant registry and scale configuration."""

import pytest
from hypothesis import given, strategies as st

from repro.config import PAPER, ScaleConfig


def test_paper_dataset_hierarchy_is_consistent():
    # Every derived dataset is a subset of D-Sample.
    assert PAPER.d_summary_benign <= PAPER.d_sample_benign
    assert PAPER.d_summary_malicious <= PAPER.d_sample_malicious
    assert PAPER.d_inst_benign <= PAPER.d_sample_benign
    assert PAPER.d_complete_benign <= PAPER.d_inst_benign
    assert PAPER.d_complete_malicious <= PAPER.d_inst_malicious


def test_paper_role_fractions_sum_to_one():
    total = PAPER.promoter_fraction + PAPER.promotee_fraction + PAPER.dual_role_fraction
    assert total == pytest.approx(1.0, abs=0.001)


def test_paper_role_counts_match_fractions():
    assert PAPER.promoter_apps + PAPER.promotee_apps + PAPER.dual_role_apps == (
        PAPER.colluding_apps
    )


def test_paper_validation_counts():
    assert PAPER.validated_total <= PAPER.flagged_apps
    assert PAPER.validated_total / PAPER.flagged_apps == pytest.approx(
        PAPER.validated_fraction, abs=0.005
    )


def test_scale_rejects_out_of_range():
    with pytest.raises(ValueError):
        ScaleConfig(scale=0.0)
    with pytest.raises(ValueError):
        ScaleConfig(scale=1.5)


def test_scale_full_is_paper_scale():
    config = ScaleConfig(scale=1.0)
    assert config.n_apps == PAPER.total_apps
    assert config.n_users == PAPER.total_users
    assert config.n_posts == PAPER.total_posts


@given(st.floats(min_value=0.005, max_value=1.0))
def test_scaled_counts_have_floors_and_monotonicity(scale):
    config = ScaleConfig(scale=scale)
    assert config.n_apps >= 200
    assert config.n_users >= 500
    assert config.n_posts >= 5_000
    assert config.count(100, minimum=7) >= 7


@given(
    st.floats(min_value=0.01, max_value=0.99),
    st.floats(min_value=0.01, max_value=0.99),
)
def test_structural_scales_slower_than_linear(small, big):
    if small > big:
        small, big = big, small
    cfg_small = ScaleConfig(scale=small)
    cfg_big = ScaleConfig(scale=big)
    assert cfg_small.structural(44) <= cfg_big.structural(44)
    # sqrt scaling keeps more structure than linear scaling would
    assert cfg_small.structural(44) >= max(2, int(44 * small))


def test_post_scale_is_quadratic_by_default():
    config = ScaleConfig(scale=0.1)
    assert config.post_scale == pytest.approx(0.01)


def test_post_scale_override():
    config = ScaleConfig(scale=0.1, post_scale=0.5)
    assert config.n_posts == int(round(PAPER.total_posts * 0.5))
