"""The perf harness's regression gate (:func:`repro.bench.compare`).

The measuring half of the harness is exercised by ``repro bench`` in
CI; these tests pin the comparison semantics the CI job relies on:
ratios may wobble within the tolerance, a drop beyond it fails, a
missing gate fails loudly, and reports from different modes refuse to
compare (their workloads differ, so their ratios do too).
"""

from __future__ import annotations

import argparse
import json

import repro.bench
from repro.bench import BENCH_VERSION, GATED_COMPONENTS, compare


def report(mode="quick", **gates):
    # Every synthetic report satisfies the absolute floors by default
    # so the relative-gate tests stay focused on the ratio semantics.
    base = {"batched_service_speedup": 1.4, "smo_speedup": 1.1}
    base.update(gates)
    return {"mode": mode, "gates": base}


def test_equal_reports_pass():
    baseline = report(feature_matrix_speedup=10.0, name_clustering_speedup=60.0)
    assert compare(baseline, baseline) == []


def test_wobble_within_tolerance_passes():
    baseline = report(feature_matrix_speedup=10.0)
    current = report(feature_matrix_speedup=8.1)  # -19%, tolerance 20%
    assert compare(current, baseline) == []


def test_drop_beyond_tolerance_fails():
    baseline = report(feature_matrix_speedup=10.0)
    current = report(feature_matrix_speedup=7.9)  # -21%
    failures = compare(current, baseline)
    assert len(failures) == 1
    assert "feature_matrix_speedup" in failures[0]


def test_tolerance_is_configurable():
    baseline = report(feature_matrix_speedup=10.0)
    current = report(feature_matrix_speedup=9.4)
    assert compare(current, baseline, tolerance=0.1) == []
    assert compare(current, baseline, tolerance=0.05) != []


def test_missing_gate_fails():
    baseline = report(feature_matrix_speedup=10.0, name_clustering_speedup=60.0)
    current = report(feature_matrix_speedup=10.0)
    failures = compare(current, baseline)
    assert any("name_clustering_speedup" in f for f in failures)


def test_extra_current_gates_pass_trivially():
    baseline = report(feature_matrix_speedup=10.0)
    current = report(feature_matrix_speedup=10.0, brand_new_speedup=1.0)
    assert compare(current, baseline) == []


def test_mode_mismatch_fails():
    baseline = report(mode="full", feature_matrix_speedup=10.0)
    current = report(mode="quick", feature_matrix_speedup=10.0)
    failures = compare(current, baseline)
    assert any("mode mismatch" in f for f in failures)


def test_improvements_never_fail():
    baseline = report(feature_matrix_speedup=10.0)
    current = report(feature_matrix_speedup=300.0)
    assert compare(current, baseline) == []


def _main_args(**overrides):
    defaults = dict(full=False, seed=7, out=None, compare=None, tolerance=0.2)
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


def _stub_report(mode="quick"):
    return {
        "schema_version": BENCH_VERSION,
        "bench_version": BENCH_VERSION,
        "mode": mode,
        "seed": 7,
        "python": "3",
        "numpy": "1",
        "components": {},
        "gates": {"feature_matrix_speedup": 10.0},
    }


def test_report_is_stamped_with_schema_version(monkeypatch, tmp_path, capsys):
    """``--out`` reports carry ``schema_version`` (plus the old alias)."""
    monkeypatch.setattr(
        repro.bench, "run_bench", lambda mode, seed: _stub_report(mode)
    )
    out = tmp_path / "BENCH_test.json"
    assert repro.bench.main(_main_args(out=str(out))) == 0
    written = json.loads(out.read_text())
    assert written["schema_version"] == BENCH_VERSION
    assert written["bench_version"] == BENCH_VERSION


def test_missing_baseline_warns_and_passes(monkeypatch, tmp_path, capsys):
    """``--compare MISSING`` is a bootstrap case: warning + exit 0."""
    monkeypatch.setattr(
        repro.bench, "run_bench", lambda mode, seed: _stub_report(mode)
    )
    missing = tmp_path / "BENCH_baseline.json"
    assert repro.bench.main(_main_args(compare=str(missing))) == 0
    err = capsys.readouterr().err
    assert "not found" in err
    assert "skipping" in err


def test_present_baseline_still_gates(monkeypatch, tmp_path):
    """A real baseline file keeps the exit-1 regression behaviour."""
    monkeypatch.setattr(
        repro.bench, "run_bench", lambda mode, seed: _stub_report(mode)
    )
    baseline = tmp_path / "BENCH_baseline.json"
    regressing = dict(_stub_report(), gates={"feature_matrix_speedup": 100.0})
    baseline.write_text(json.dumps(regressing))
    assert repro.bench.main(_main_args(compare=str(baseline))) == 1


def test_gated_components_include_the_service_and_smo_ratios():
    # smo and batched_service graduated to gated once the harness was
    # made fair (training hoisted out of the timed region, best-of-N
    # repeats, per-served normalisation)
    assert "smo" in GATED_COMPONENTS
    assert "batched_service" in GATED_COMPONENTS
    assert "feature_matrix" in GATED_COMPONENTS
    assert "name_clustering" in GATED_COMPONENTS


def test_batched_service_must_strictly_beat_unbatched():
    baseline = report()
    losing = report(batched_service_speedup=0.99)
    failures = compare(losing, baseline)
    assert any(
        "batched_service_speedup" in f and "absolute floor" in f
        for f in failures
    )
    # exactly 1.0 is not a win either: the floor is strict
    at_par = report(batched_service_speedup=1.0)
    assert any(
        "batched_service_speedup" in f for f in compare(at_par, baseline)
    )


def test_smo_row_cache_must_not_lose():
    baseline = report()
    losing = report(smo_speedup=0.97)
    failures = compare(losing, baseline)
    assert any(
        "smo_speedup" in f and "absolute floor" in f for f in failures
    )
    # >= 1.0 is acceptable for smo (it must not lose, par is fine)
    at_par = report(smo_speedup=1.0)
    assert not any("smo_speedup" in f for f in compare(at_par, baseline))


def test_absolute_floor_fails_even_when_the_baseline_also_lost():
    """A regressed baseline must not grandfather a losing fast path."""
    both_losing_baseline = report(batched_service_speedup=0.9)
    both_losing_current = report(batched_service_speedup=0.9)
    failures = compare(both_losing_current, both_losing_baseline)
    assert any("batched_service_speedup" in f for f in failures)
