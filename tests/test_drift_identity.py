"""The rollout-off identity contract: no controller, no behaviour change.

In the style of ``tests/test_obs_identity.py``: the drift/rollout
machinery of this PR must be invisible unless a controller is attached.
With ``rollout=None`` the service walks the exact seed code paths —
batched scoring stays batched, the cache is version-blind, responses
carry ``model_version == 0``, and the report summary prints no model
lines.  And a *steady* controller (champion = the same cascade, nobody
on probation) may stamp versions but must not change a single verdict.

Worlds are private per run: serving mutates transport state, so every
comparison rebuilds from the same config.
"""

from __future__ import annotations

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.service import (
    LoadProfile,
    ModelRegistry,
    RolloutController,
    generate_requests,
    make_service,
)

CHAOS = dict(scale=0.01, master_seed=424242, fault_rate=0.2)


def serve_run(attach):
    """A fresh chaos pipeline + batched serve; ``attach`` mounts the
    (possibly absent) rollout controller onto the built service."""
    result = FrappePipeline(ScaleConfig(**CHAOS)).run(sweep_unlabelled=False)
    service = make_service(
        result, ServiceConfig(batch_size=4, max_queue_depth=8)
    )
    attach(service)
    profile = LoadProfile(n_requests=40, rate_rps=0.5, pool_size=12, seed=7)
    requests = generate_requests(sorted(result.bundle.d_sample), profile)
    report = service.serve(requests)
    return service, report


def steady_controller(service):
    """Champion = the service's own cascade; no canary ever starts."""
    registry = ModelRegistry()
    champion = registry.register(service.cascade, note="steady champion")
    service.rollout = RolloutController(registry, champion.version)


def response_image(report, with_version=True):
    return [
        (
            r.app_id, r.outcome, r.rung, r.verdict, r.cache_state,
            r.latency_s, r.batch_size,
        )
        + ((r.model_version,) if with_version else ())
        for r in report.responses
    ]


def test_rollout_off_runs_are_byte_identical():
    _, first = serve_run(attach=lambda service: None)
    _, second = serve_run(attach=lambda service: None)
    assert response_image(first) == response_image(second)
    assert first.summary() == second.summary()
    assert first.transport == second.transport


def test_rollout_off_is_version_free():
    service, report = serve_run(attach=lambda service: None)
    assert service.rollout is None
    assert all(r.model_version == 0 for r in report.responses)
    assert report.rollout == {}
    # The summary stays in its seed shape: no model/rollout lines.
    assert "model v" not in report.summary()
    assert "rollout:" not in report.summary()
    # The version-blind cache never evicts on version.
    assert service.cache.version_evictions == 0
    assert report.version_outcome_counts().keys() <= {0}


def test_steady_controller_changes_no_verdicts():
    """Versions are bookkeeping: with the same model as champion and no
    canary, every outcome/rung/verdict/latency matches rollout=None."""
    _, bare = serve_run(attach=lambda service: None)
    service, steady = serve_run(attach=steady_controller)
    assert response_image(steady, with_version=False) == response_image(
        bare, with_version=False
    )
    # Only the stamp differs: overload/deadline answers keep version 0,
    # everything the champion rendered says so.
    assert {r.model_version for r in steady.responses} <= {0, 1}
    assert any(r.model_version == 1 for r in steady.responses)
    assert service.cache.version_evictions == 0
    assert not service.rollout.incidents
    assert not service.rollout.promotions


def test_steady_summary_gains_only_model_lines():
    _, bare = serve_run(attach=lambda service: None)
    _, steady = serve_run(attach=steady_controller)
    bare_lines = bare.summary().splitlines()
    steady_lines = [
        line
        for line in steady.summary().splitlines()
        if not line.startswith(("model v", "rollout:"))
    ]
    assert steady_lines == bare_lines
