"""Tests for scaling, metrics, and cross-validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.crossval import (
    cross_validate,
    stratified_kfold_indices,
    subsample_to_ratio,
)
from repro.ml.metrics import ClassificationReport, confusion_report
from repro.ml.scaling import StandardScaler
from repro.ml.svm import SVC


class TestScaler:
    def test_standardises(self, rng):
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_nan(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))
        assert np.allclose(z[:, 0], 0.0)

    def test_transform_uses_training_statistics(self, rng):
        train = rng.normal(0, 1, (50, 2))
        scaler = StandardScaler().fit(train)
        test = rng.normal(10, 1, (50, 2))
        transformed = scaler.transform(test)
        assert transformed.mean() > 5  # not re-centred on the test set

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))


class TestMetrics:
    def test_paper_conventions(self):
        # 2 benign (1 flagged), 3 malicious (1 missed)
        report = confusion_report(
            y_true=np.array([0, 0, 1, 1, 1]),
            y_pred=np.array([0, 1, 1, 1, 0]),
        )
        assert report.accuracy == pytest.approx(3 / 5)
        assert report.false_positive_rate == pytest.approx(1 / 2)
        assert report.false_negative_rate == pytest.approx(1 / 3)

    def test_addition_pools_counts(self):
        a = ClassificationReport(1, 2, 3, 4)
        b = ClassificationReport(10, 20, 30, 40)
        total = a + b
        assert total.true_positives == 11
        assert total.n_samples == 110

    def test_empty_rates_are_zero(self):
        empty = ClassificationReport(0, 0, 0, 0)
        assert empty.accuracy == 0.0
        assert empty.false_positive_rate == 0.0
        assert empty.false_negative_rate == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_report(np.array([0, 1]), np.array([0]))

    @given(
        st.lists(
            st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60
        )
    )
    def test_confusion_counts_partition_samples(self, pairs):
        y_true = np.array([t for t, _ in pairs])
        y_pred = np.array([p for _, p in pairs])
        report = confusion_report(y_true, y_pred)
        assert report.n_samples == len(pairs)
        assert report.n_malicious == int(y_true.sum())
        assert report.n_benign == len(pairs) - int(y_true.sum())
        acc, fp, fn = report.as_percentages()
        assert 0 <= acc <= 100 and 0 <= fp <= 100 and 0 <= fn <= 100


class TestStratifiedKFold:
    @given(
        n_benign=st.integers(5, 60),
        n_malicious=st.integers(5, 60),
        k=st.integers(2, 5),
    )
    def test_folds_partition_and_stratify(self, n_benign, n_malicious, k):
        y = np.array([0] * n_benign + [1] * n_malicious)
        folds = stratified_kfold_indices(y, k, np.random.default_rng(0))
        all_indices = np.concatenate(folds)
        assert sorted(all_indices.tolist()) == list(range(len(y)))
        per_fold_malicious = [int(y[f].sum()) for f in folds]
        assert max(per_fold_malicious) - min(per_fold_malicious) <= 1

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            stratified_kfold_indices(np.array([0, 1]), 5, np.random.default_rng(0))

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            stratified_kfold_indices(np.zeros(10), 1, np.random.default_rng(0))


class TestSubsample:
    def test_exact_ratio(self, rng):
        x = rng.normal(size=(300, 2))
        y = np.array([0] * 200 + [1] * 100)
        xr, yr = subsample_to_ratio(x, y, 4.0, rng)
        assert (yr == 0).sum() == 4 * (yr == 1).sum()

    def test_binding_constraint_uses_all_of_one_class(self, rng):
        x = rng.normal(size=(110, 2))
        y = np.array([0] * 100 + [1] * 10)
        _, yr = subsample_to_ratio(x, y, 10.0, rng)
        assert (yr == 1).sum() == 10
        assert (yr == 0).sum() == 100

    def test_requires_both_classes(self, rng):
        with pytest.raises(ValueError):
            subsample_to_ratio(np.zeros((5, 1)), np.zeros(5), 2.0, rng)

    def test_invalid_ratio(self, rng):
        with pytest.raises(ValueError):
            subsample_to_ratio(np.zeros((5, 1)), np.array([0, 0, 0, 1, 1]), 0.0, rng)


class TestCrossValidate:
    def test_cv_on_separable_data(self, rng):
        x = np.vstack([rng.normal(0, 1, (60, 3)), rng.normal(5, 1, (60, 3))])
        y = np.array([0] * 60 + [1] * 60)
        report = cross_validate(lambda: SVC(), x, y, rng=rng)
        assert report.accuracy >= 0.98
        assert report.n_samples == 120  # every sample tested exactly once

    def test_cv_reports_chance_on_random_labels(self, rng):
        x = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, 100)
        report = cross_validate(lambda: SVC(), x, y, rng=rng)
        assert report.accuracy < 0.75  # no signal to learn
