"""Tests for names, messages, the benign population, and campaigns.

Distribution assertions use wide tolerances: these check that the
generator is wired to the right knobs, not the exact paper values
(which the benchmark suite compares at a larger scale).
"""

import numpy as np
import pytest

from repro.ecosystem.benign import BenignPopulation, draw_benign_permissions
from repro.ecosystem.campaigns import (
    CampaignPlan,
    HackerCampaign,
    plan_campaign_sizes,
)
from repro.ecosystem.messages import MessageFactory
from repro.ecosystem.names import NameFactory, SCAM_BASE_NAMES
from repro.ecosystem.params import GenerationParams
from repro.ecosystem.services import EcosystemServices
from repro.mypagekeeper.keywords import contains_spam_keyword
from repro.platform.apps import AppRegistry
from repro.platform.posts import PostLog
from repro.urlinfra.blacklist import UrlBlacklist
from repro.urlinfra.hosting import HostingRegistry
from repro.urlinfra.redirector import RedirectorNetwork
from repro.urlinfra.shortener import Shortener
from repro.urlinfra.wot import WotService


def _services(rng) -> EcosystemServices:
    return EcosystemServices(
        registry=AppRegistry(rng),
        post_log=PostLog(),
        wot=WotService(rng),
        hosting=HostingRegistry(),
        redirector=RedirectorNetwork(rng),
        blacklist=UrlBlacklist(),
        shorteners={"bit.ly": Shortener(rng, "bit.ly")},
        names=NameFactory(rng),
        messages=MessageFactory(rng),
        n_users=1000,
    )


class TestNames:
    def test_benign_names_mostly_unique(self, rng):
        names = NameFactory(rng).benign_names(300, shared_fraction=0.02)
        assert len(set(names)) >= 0.9 * len(names)

    def test_scam_pool_distinct_within_campaign(self, rng):
        pool = NameFactory(rng).scam_name_pool(40)
        assert len(set(pool)) == 40

    def test_scam_pools_rarely_collide_across_campaigns(self, rng):
        factory = NameFactory(rng)
        a = set(factory.scam_name_pool(30))
        b = set(factory.scam_name_pool(30))
        overlap = a & b
        assert len(overlap) <= 10
        assert overlap <= set(SCAM_BASE_NAMES)  # only classics repeat

    def test_version_suffix_format(self, rng):
        factory = NameFactory(rng)
        from repro.text.typosquat import strip_version_suffix
        for _ in range(20):
            versioned = factory.with_version("Past Life")
            base, had = strip_version_suffix(versioned)
            assert had and base == "Past Life"

    def test_typosquat_is_similar_but_different(self, rng):
        from repro.text.editdist import name_similarity
        factory = NameFactory(rng)
        for _ in range(20):
            squatted = factory.typosquat_of("FarmVille")
            assert squatted != "FarmVille"
            assert name_similarity(squatted, "FarmVille") >= 0.75


class TestMessages:
    def test_spam_messages_are_keyword_dense_and_similar(self, rng):
        factory = MessageFactory(rng)
        template = factory.campaign_template()
        messages = [factory.spam_message(template) for _ in range(10)]
        assert all(contains_spam_keyword(m) for m in messages)
        # Same campaign template: only the number varies.
        tokens = [frozenset(m.lower().split()) for m in messages]
        shared = set.intersection(*map(set, tokens))
        assert len(shared) >= 3

    def test_benign_messages_avoid_spam_vocabulary(self, rng):
        factory = MessageFactory(rng)
        hits = sum(
            contains_spam_keyword(factory.benign_message("Happy Farm"))
            for _ in range(100)
        )
        assert hits == 0

    def test_engagement_ordering(self, rng):
        factory = MessageFactory(rng)
        spam = np.mean([factory.spam_engagement()[0] for _ in range(200)])
        benign = np.mean([factory.benign_engagement()[0] for _ in range(200)])
        assert benign > spam * 2


class TestBenignPopulation:
    @pytest.fixture(scope="class")
    def population(self):
        rng = np.random.default_rng(3)
        services = _services(rng)
        population = BenignPopulation(services, GenerationParams(), rng, scale=0.05)
        population.build(400)
        return population

    def test_build_count_and_names(self, population):
        assert len(population.apps) == 400
        assert population.apps[0].name == "FarmVille"  # popular head first

    def test_summary_completeness_near_paper(self, population):
        apps = population.apps
        has_description = np.mean([a.has_description for a in apps])
        assert 0.85 <= has_description <= 0.99

    def test_single_permission_fraction(self, population):
        singles = np.mean([a.permission_count == 1 for a in population.apps])
        assert 0.5 <= singles <= 0.75

    def test_redirects_mostly_facebook(self, population):
        facebook = np.mean(
            ["apps.facebook.com" in a.redirect_uri for a in population.apps]
        )
        assert 0.7 <= facebook <= 0.9

    def test_client_ids_mostly_honest(self, population):
        mismatched = np.mean([bool(a.client_id_pool) for a in population.apps])
        assert mismatched <= 0.05

    def test_hobbyists_are_bare(self, population):
        for app_id in population.hobbyist_app_ids:
            app = next(a for a in population.apps if a.app_id == app_id)
            assert not app.has_description
            assert app.permission_count == 1
            assert not app.profile_feed

    def test_emitted_posts_carry_metadata(self, population):
        app = population.apps[5]
        population.emit_posts(app, 20, horizon_days=270)
        log = population._post_log
        assert log.post_count(app.app_id) == 20
        assert log.app_name(app.app_id) == app.name


def test_draw_benign_permissions_law(rng):
    params = GenerationParams()
    counts = [len(draw_benign_permissions(rng, params)) for _ in range(2000)]
    singles = np.mean([c == 1 for c in counts])
    assert abs(singles - params.benign_single_permission) < 0.05
    assert max(counts) <= 64


class TestCampaignPlanning:
    def test_sizes_sum_and_shape(self, rng):
        sizes = plan_campaign_sizes(6331, 44, rng)
        assert len(sizes) == 44
        assert abs(sum(sizes) - 6331) < 300
        assert sizes[0] > sizes[1] > sizes[4]
        assert sizes[0] / sum(sizes) == pytest.approx(0.55, abs=0.05)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            plan_campaign_sizes(3, 10, rng)


class TestHackerCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        rng = np.random.default_rng(11)
        services = _services(rng)
        plan = CampaignPlan(
            campaign_id="c0", n_apps=120, colluding=True, n_sites=3,
            mega_pod_size=15,
        )
        campaign = HackerCampaign(plan, services, GenerationParams(), rng, scale=0.05)
        campaign.build()
        return campaign

    def test_app_count(self, campaign):
        assert len(campaign.apps) == 120

    def test_mega_pod_is_the_app(self, campaign):
        mega = campaign.pods[0]
        assert mega.name == "The App"
        assert len(mega.apps) == 15
        assert all(a.app_id in campaign.loud_app_ids or True for a in mega.apps)
        # the mega pod is forced loud: most members are loud
        loud = sum(1 for a in mega.apps if a.app_id in campaign.loud_app_ids)
        assert loud >= 10

    def test_single_permission_dominates(self, campaign):
        non_professional = [
            a for a in campaign.apps
            if a.app_id not in campaign.professional_app_ids
        ]
        singles = np.mean([a.permission_count == 1 for a in non_professional])
        assert singles >= 0.9

    def test_client_id_pools_point_to_pod_mates(self, campaign):
        for pod in campaign.pods:
            ids = {a.app_id for a in pod.apps}
            for app in pod.apps:
                assert set(app.client_id_pool) <= ids - {app.app_id}

    def test_sites_target_campaign_apps(self, campaign):
        ids = {a.app_id for a in campaign.apps}
        for site in campaign.sites:
            assert set(site.target_app_ids) <= ids

    def test_roles_partition_pods(self, campaign):
        for pod in campaign.pods:
            assert pod.role in ("promoter", "promotee", "dual")

    def test_promoting_pods_have_a_mechanism(self, campaign):
        promoting = [p for p in campaign.pods if p.promotes and p.target_pods]
        assert promoting, "expected at least one wired promoting pod"
        for pod in promoting:
            assert pod.site is not None or pod.direct_targets

    def test_posts_are_emitted_with_truth_labels(self, campaign):
        app = campaign.apps[0]
        campaign.emit_posts(app, 10, horizon_days=270)
        log = campaign._services.post_log
        posts = log.posts_of_app(app.app_id)
        assert len(posts) == 10
        assert all(p.truth_malicious for p in posts)

    def test_standalone_campaign_has_no_collusion(self):
        rng = np.random.default_rng(12)
        services = _services(rng)
        plan = CampaignPlan(
            campaign_id="solo", n_apps=30, colluding=False, n_sites=0
        )
        campaign = HackerCampaign(plan, services, GenerationParams(), rng)
        campaign.build()
        assert not campaign.sites
        assert all(p.role == "standalone" for p in campaign.pods)
