"""Chaos acceptance: the study survives a 20% per-request fault rate.

The resilience layer's contract, end to end:

* the retry/backoff machinery recovers >= 95% of the collections that
  saw a transient fault (at a 20% rate and the default 4-attempt budget
  the expected give-up probability per request is ~0.2**4, so recovery
  should be well above the bar),
* classification quality barely moves: FRAppE accuracy on D-Sample
  degrades by at most one point versus the fault-free study,
* and dataset construction is fault-independent — the crawl happens
  *after* D-Sample is assembled from MyPageKeeper's report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScaleConfig
from repro.core.pipeline import FrappePipeline, PipelineResult
from repro.crawler.crawler import outcome_tallies, recovery_rate
from repro.crawler.resilience import GAVE_UP, OK
from repro.ecosystem.simulation import run_simulation

from tests.conftest import TEST_SCALE, TEST_SEED

FAULT_RATE = 0.2


@pytest.fixture(scope="module")
def chaos_result() -> PipelineResult:
    """The same world as the shared fixtures, crawled through faults."""
    config = ScaleConfig(
        scale=TEST_SCALE, master_seed=TEST_SEED, fault_rate=FAULT_RATE
    )
    world = run_simulation(config)
    return FrappePipeline(config).run_on_world(world, sweep_unlabelled=False)


def accuracy(result: PipelineResult) -> float:
    records, labels = result.sample_records()
    model = result.cascade or result.classifier
    predictions = model.predict(records)
    return float(np.mean(predictions == np.asarray(labels)))


class TestChaosAcceptance:
    def test_faults_were_actually_injected(self, chaos_result):
        stats = chaos_result.transport_stats
        assert stats.fault_count() > 0
        # The mix exercises several fault kinds, not one pathological one.
        assert len([k for k, n in stats.injected.items() if n > 0]) >= 3
        assert stats.wait_s > 0.0  # backoff was paid in simulated time

    def test_recovery_rate_at_least_95_percent(self, chaos_result):
        rate = recovery_rate(chaos_result.bundle.records)
        assert rate is not None, "a 20% fault rate must fault some collection"
        assert rate >= 0.95

    def test_most_collections_end_ok_or_authoritative(self, chaos_result):
        tallies = outcome_tallies(chaos_result.bundle.records)
        gave_up = sum(per.get(GAVE_UP, 0) for per in tallies.values())
        total = sum(sum(per.values()) for per in tallies.values())
        assert total > 0
        assert gave_up / total < 0.05

    def test_dataset_construction_is_fault_independent(
        self, chaos_result, pipeline_result
    ):
        assert (
            chaos_result.bundle.d_sample_malicious
            == pipeline_result.bundle.d_sample_malicious
        )
        assert (
            chaos_result.bundle.d_sample_benign
            == pipeline_result.bundle.d_sample_benign
        )
        assert chaos_result.bundle.whitelist == pipeline_result.bundle.whitelist

    def test_accuracy_degrades_at_most_one_point(
        self, chaos_result, pipeline_result
    ):
        clean = accuracy(pipeline_result)
        faulted = accuracy(chaos_result)
        assert clean - faulted <= 0.01 + 1e-9

    def test_faulted_pipeline_carries_the_cascade(self, chaos_result):
        assert chaos_result.cascade is not None
        assert chaos_result.classifier is chaos_result.cascade.full

    def test_degraded_records_expose_their_outcomes(self, chaos_result):
        records = chaos_result.bundle.records
        recovered = [
            r
            for r in records.values()
            if any(o.recovered for o in r.outcomes.values())
        ]
        assert recovered, "retries should have recovered some collections"
        for record in records.values():
            for collection, outcome in record.outcomes.items():
                assert outcome.collection == collection
                if outcome.status == OK and collection == "summary":
                    assert record.summary_ok
