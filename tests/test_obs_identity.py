"""The observability determinism contract: watching changes nothing.

The hard requirement of ``repro.obs``: with the default null observer
the instrumented code paths consume **no RNG draws and no clock time**,
and with a :class:`TracingObserver` installed every pipeline output —
crawl records, transport accounting, journal bytes, verdicts, service
reports — is *byte-identical* to an unobserved run.  The trace itself
is byte-reproducible across crawl worker counts (scheduling metadata
excluded: it is worker-topology-specific by design).

Worlds are private per run: crawling and serving mutate transport and
installer state, so on/off comparisons rebuild from the same config.
"""

from __future__ import annotations

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.crawler.checkpoint import CrawlJournal
from repro.crawler.crawler import make_crawler
from repro.ecosystem.simulation import run_simulation
from repro.obs import (
    NULL_OBSERVER,
    NULL_SPAN,
    TracingObserver,
    get_observer,
    observation,
)
from repro.service import LoadProfile, generate_requests, make_service

CHAOS = dict(scale=0.01, master_seed=424242, fault_rate=0.2)
N_APPS = 24


def chaos_crawl(observer=None, workers=1, journal_dir=None):
    """A fresh chaos crawl of the first N apps; returns (records, stats)."""
    world = run_simulation(ScaleConfig(**CHAOS))
    crawler = make_crawler(world)
    apps = sorted(app.app_id for app in world.registry.all_apps())[:N_APPS]
    journal = None
    if journal_dir is not None:
        journal = CrawlJournal(journal_dir, snapshot_every=8, resume=False)
    try:
        with observation(observer):
            records = crawler.crawl_many(apps, journal=journal, workers=workers)
    finally:
        if journal is not None:
            journal.close()
    return records, crawler.stats


def serve_run(observer):
    """A fresh chaos pipeline + batched serve; returns (result, report)."""
    with observation(observer):
        result = FrappePipeline(ScaleConfig(**CHAOS)).run(sweep_unlabelled=False)
        service = make_service(
            result, ServiceConfig(batch_size=4, max_queue_depth=8)
        )
        profile = LoadProfile(
            n_requests=40, rate_rps=0.5, pool_size=12, seed=7
        )
        requests = generate_requests(sorted(result.bundle.d_sample), profile)
        report = service.serve(requests)
    return result, report


def response_image(report):
    return [
        (r.app_id, r.outcome, r.rung, r.verdict, r.cache_state,
         r.latency_s, r.batch_size)
        for r in report.responses
    ]


def test_default_observer_is_the_null_observer():
    assert get_observer() is NULL_OBSERVER
    assert not NULL_OBSERVER.enabled


def test_null_span_context_is_reusable_and_inert():
    cm = NULL_OBSERVER.span("anything", t=123.0, whatever="x")
    for _ in range(2):  # the same CM object must survive re-entry
        with cm as span:
            assert span is NULL_SPAN
            span.note(ignored=True)
            span.end(999.0)
    assert NULL_SPAN.attrs == {} and NULL_SPAN.t_end == 0.0


def test_chaos_crawl_is_byte_identical_with_observation_on(tmp_path):
    """Records, stats, and journal bytes match an unobserved run."""
    off_records, off_stats = chaos_crawl(
        observer=None, journal_dir=tmp_path / "off"
    )
    observer = TracingObserver()
    on_records, on_stats = chaos_crawl(
        observer=observer, journal_dir=tmp_path / "on"
    )
    assert [repr(r) for r in on_records] == [repr(r) for r in off_records]
    assert on_stats.snapshot() == off_stats.snapshot()
    assert (tmp_path / "on" / "journal.jsonl").read_bytes() == (
        tmp_path / "off" / "journal.jsonl"
    ).read_bytes()
    # ... and the observed run actually recorded the crawl.
    assert observer.metrics.counter_value("crawl_apps_total") == N_APPS
    assert len(observer.tracer.roots(categories=("crawl",))) >= N_APPS


def test_trace_is_byte_identical_across_worker_counts():
    """Same crawl, workers 1 vs 4: same records, same canonical trace."""
    sequential = TracingObserver()
    seq_records, _ = chaos_crawl(observer=sequential, workers=1)
    parallel = TracingObserver()
    par_records, _ = chaos_crawl(observer=parallel, workers=4)
    assert [repr(r) for r in par_records] == [repr(r) for r in seq_records]
    # The "schedule" category is worker-topology metadata; everything
    # else — including every crawl span and nested event — is identical.
    assert parallel.tracer.to_jsonl(
        categories=("crawl",)
    ) == sequential.tracer.to_jsonl(categories=("crawl",))
    # The sequential run has no scheduler, so no schedule category.
    assert not sequential.tracer.roots(categories=("schedule",))
    assert parallel.tracer.roots(categories=("schedule",))


def test_pipeline_and_batched_serve_identical_with_observation_on():
    """Training, cascade scoring, and serving are untouched by tracing."""
    _off_result, off_report = serve_run(observer=None)
    observer = TracingObserver()
    _on_result, on_report = serve_run(observer=observer)
    assert response_image(on_report) == response_image(off_report)
    assert on_report.summary() == off_report.summary()
    assert on_report.transport == off_report.transport
    # The observed run recorded spans for training and every *handled*
    # request; admission-shed requests are answered without a span but
    # leave a ``serve.shed`` event instead.
    assert observer.tracer.roots(categories=("train",))
    serve_roots = observer.tracer.roots(categories=("serve",))
    named = [s for s in serve_roots if s.name == "serve.request"]
    client_spans = [s for s in named if s.attrs.get("priority") != "refresh"]
    overloaded = sum(
        1 for r in on_report.responses if r.outcome == "overloaded"
    )
    assert len(client_spans) + overloaded == len(on_report.responses)
    shed_events = sum(
        len([e for e in s.events if e.name == "serve.shed"])
        for s in serve_roots
    )
    assert shed_events >= overloaded


def test_watchdog_assessments_identical_with_observation_on():
    """The watchdog's spans/metrics (PR 8) only watch: assessments and
    re-crawl decisions are byte-identical with a tracer installed."""
    from repro.core.watchdog import AppWatchdog
    from repro.crawler.crawler import AppCrawler

    def assess_run(observer):
        result = FrappePipeline(ScaleConfig(**CHAOS)).run(sweep_unlabelled=False)
        watchdog = AppWatchdog(
            result.classifier,
            result.extractor,
            AppCrawler(result.world),
            max_staleness_days=0,  # force the stale -> re-crawl path too
        )
        apps = sorted(result.bundle.d_sample)[:8]
        with observation(observer):
            first = watchdog.bulk_assess(apps, day=400)
            second = watchdog.bulk_assess(apps, day=400)  # cache hits
        return [
            (a.app_id, a.risk_score, a.confidence, tuple(a.advisories))
            for a in first + second
        ]

    observer = TracingObserver()
    assert assess_run(None) == assess_run(observer)
    # ... and the run actually recorded watchdog telemetry.
    metrics = observer.metrics
    assert metrics.counter_value("watchdog_assessments_total",
                                 confidence="high") > 0
    assert metrics.counter_value("watchdog_cache_hits_total") > 0
    assert metrics.histogram_of("watchdog_risk_score") is not None
    assert metrics.histogram_of("watchdog_staleness_days") is not None


def test_monitor_epoch_identical_with_observation_on(tmp_path):
    """The monitor's spans, backpressure events, and append telemetry
    leave the history store byte-identical."""
    from repro.crawler.datasets import DatasetBuilder
    from repro.crawler.monitor import AppMonitor, MonitorConfig, MonitorJournal
    from repro.mypagekeeper.classifier import UrlClassifier
    from repro.mypagekeeper.monitor import MyPageKeeper

    def monitor_run(observer, directory):
        world = run_simulation(ScaleConfig(**CHAOS, blackouts=2))
        report = MyPageKeeper(
            UrlClassifier(world.services.blacklist), world.post_log
        ).scan()
        apps = sorted(
            DatasetBuilder(world, report).build(crawl=False).d_sample
        )[:N_APPS]
        journal = MonitorJournal(directory)
        monitor = AppMonitor(
            world, make_crawler(world), apps,
            config=MonitorConfig(epochs=2, forensics=True, lifecycle=True),
            journal=journal,
        )
        with observation(observer):
            monitor.run()
        journal.close()
        return monitor.export_history_bytes()

    observer = TracingObserver()
    unobserved = monitor_run(None, tmp_path / "off")
    observed = monitor_run(observer, tmp_path / "on")
    assert unobserved == observed
    assert observer.metrics.counter_value("monitor_appends_total") > 0
    assert observer.metrics.counter_value("monitor_epochs_total") == 2.0
