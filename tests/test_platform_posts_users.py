"""Tests for the post log, users, and the social graph."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.platform.posts import Post, PostLog
from repro.platform.users import SocialGraph, UserBase


class TestPostLog:
    def _log_with(self, specs):
        log = PostLog()
        for app_id, link in specs:
            log.new_post(day=0, user_id=0, app_id=app_id, link=link)
        return log

    def test_new_post_assigns_dense_ids(self):
        log = PostLog()
        posts = [log.new_post(day=0, user_id=0, app_id=None) for _ in range(3)]
        assert [p.post_id for p in posts] == [0, 1, 2]

    def test_non_dense_append_rejected(self):
        log = PostLog()
        with pytest.raises(ValueError):
            log.append(Post(post_id=5, day=0, user_id=0, app_id=None))

    def test_per_app_counters(self):
        log = self._log_with(
            [("a", None), ("a", "http://x.com/1"), ("b", None), (None, None)]
        )
        assert log.post_count("a") == 2
        assert log.post_count("b") == 1
        assert log.post_count("missing") == 0
        assert log.link_count("a") == 1
        assert len(log) == 4

    def test_url_multiset(self):
        log = self._log_with(
            [("a", "http://x.com/1"), ("a", "http://x.com/1"), ("a", "http://y.com/2")]
        )
        urls = log.urls_of_app("a")
        assert urls["http://x.com/1"] == 2
        assert urls["http://y.com/2"] == 1

    def test_app_name_from_metadata(self):
        log = PostLog()
        log.new_post(day=0, user_id=0, app_id="a", app_name="FarmVille")
        log.new_post(day=1, user_id=0, app_id="a", app_name="Renamed Later")
        assert log.app_name("a") == "FarmVille"  # first observation wins
        assert log.app_name("unknown") is None

    def test_posts_of_app(self):
        log = self._log_with([("a", None), ("b", None), ("a", None)])
        assert [p.post_id for p in log.posts_of_app("a")] == [0, 2]

    @given(st.lists(st.sampled_from(["a", "b", None]), max_size=40))
    def test_counts_match_iteration(self, app_ids):
        log = PostLog()
        for app_id in app_ids:
            log.new_post(day=0, user_id=0, app_id=app_id)
        for app in ("a", "b"):
            assert log.post_count(app) == sum(1 for x in app_ids if x == app)


class TestUserBase:
    def test_bounds_checked(self):
        users = UserBase(10, np.random.default_rng(0))
        with pytest.raises(KeyError):
            users.record(10)

    def test_subscription(self):
        users = UserBase(100, np.random.default_rng(0))
        users.subscribe_to_mpk([1, 5, 7])
        assert users.subscribed_users() == [1, 5, 7]
        assert users.is_subscribed(5)
        assert not users.is_subscribed(2)

    def test_installs(self):
        users = UserBase(10, np.random.default_rng(0))
        users.install_app(3, "app-1")
        assert users.has_installed(3, "app-1")
        assert not users.has_installed(3, "app-2")
        assert not users.has_installed(4, "app-1")

    def test_sample_users_distinct(self):
        users = UserBase(50, np.random.default_rng(0))
        sample = users.sample_users(30)
        assert len(set(int(u) for u in sample)) == 30

    def test_zero_users_rejected(self):
        with pytest.raises(ValueError):
            UserBase(0, np.random.default_rng(0))


class TestSocialGraph:
    def test_degrees_and_symmetry(self):
        graph = SocialGraph(60, mean_friends=6, rng=np.random.default_rng(0))
        for user in range(60):
            for friend in graph.friends(user):
                assert user in graph.friends(friend)

    def test_edge_count_consistent(self):
        graph = SocialGraph(40, mean_friends=4, rng=np.random.default_rng(1))
        assert graph.edge_count() == sum(graph.degree(u) for u in range(40)) // 2

    def test_mean_degree_near_target(self):
        graph = SocialGraph(200, mean_friends=8, rng=np.random.default_rng(2))
        mean = sum(graph.degree(u) for u in range(200)) / 200
        assert 6 <= mean <= 9

    def test_too_many_friends_rejected(self):
        with pytest.raises(ValueError):
            SocialGraph(5, mean_friends=5, rng=np.random.default_rng(0))
