"""Tests for the watchdog service, dataset export, and the CLI."""

import json

import numpy as np
import pytest

from repro.core.frappe import frappe
from repro.core.watchdog import AppWatchdog
from repro.crawler.crawler import AppCrawler
from repro.io import export_dataset, load_dataset
from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def watchdog(pipeline_result):
    records, labels = pipeline_result.sample_records()
    classifier = frappe(pipeline_result.extractor).fit(records, labels)
    return AppWatchdog(
        classifier,
        pipeline_result.extractor,
        AppCrawler(pipeline_result.world),
    )


class TestWatchdog:
    def test_scores_separate_the_classes(self, watchdog, pipeline_result):
        bundle = pipeline_result.bundle
        malicious = sorted(bundle.d_sample_malicious)[:15]
        benign = sorted(bundle.d_sample_benign)[:15]
        malicious_scores = [watchdog.assess(a).risk_score for a in malicious]
        benign_scores = [watchdog.assess(a).risk_score for a in benign]
        assert np.mean(malicious_scores) > np.mean(benign_scores) + 30
        assert all(0 <= s <= 100 for s in malicious_scores + benign_scores)

    def test_risky_assessments_carry_advisories(self, watchdog, pipeline_result):
        risky = [
            a for a in watchdog.ranking(top=5) if a.is_risky
        ]
        assert risky
        for assessment in risky:
            assert assessment.advisories
            assert "HIGH RISK" in assessment.summary()

    def test_cache_and_staleness(self, watchdog, pipeline_result):
        app_id = next(iter(pipeline_result.bundle.d_sample_benign))
        first = watchdog.assess(app_id, day=0)
        cached = watchdog.assess(app_id, day=watchdog.max_staleness_days)
        assert cached is first
        refreshed = watchdog.assess(app_id, day=watchdog.max_staleness_days + 1)
        assert refreshed is not first
        assert refreshed.assessed_day > first.assessed_day

    def test_ranking_is_sorted(self, watchdog):
        ranking = watchdog.ranking(top=10)
        scores = [a.risk_score for a in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_decision_boundary_maps_to_50(self, watchdog):
        assert watchdog._risk_from_margin(0.0) == pytest.approx(50.0)
        assert watchdog._risk_from_margin(5.0) > 95
        assert watchdog._risk_from_margin(-5.0) < 5


class TestDatasetIo:
    def test_export_load_roundtrip(self, pipeline_result, tmp_path):
        path = export_dataset(pipeline_result, tmp_path / "dsample.json")
        records, labels, metadata = load_dataset(path)
        assert len(records) == len(pipeline_result.bundle.d_sample)
        assert sum(labels) == len(pipeline_result.bundle.d_sample_malicious)
        assert metadata["n_malicious"] == sum(labels)
        # Spot-check a record's fields.
        original_id = records[0].app_id
        original = pipeline_result.bundle.records[original_id]
        assert records[0].permissions == original.permissions
        assert records[0].summary_ok == original.summary_ok
        assert len(records[0].profile_posts) == len(original.profile_posts)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "records": []}))
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_loaded_records_work_with_a_classifier(
        self, pipeline_result, tmp_path
    ):
        path = export_dataset(pipeline_result, tmp_path / "d.json")
        records, labels, _ = load_dataset(path)
        # On-demand features survive the round trip, so a Lite model
        # trained on loaded data performs like one trained in-process.
        from repro.core.frappe import frappe_lite

        classifier = frappe_lite(pipeline_result.extractor).fit(records, labels)
        predictions = classifier.predict(records)
        assert (predictions == np.asarray(labels)).mean() > 0.9


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["--scale", "0.05", "simulate"])
        assert args.command == "simulate"
        assert args.scale == 0.05
        args = parser.parse_args(["evaluate", "123", "456"])
        assert args.app_ids == ["123", "456"]
        args = parser.parse_args(["export", "out.json"])
        assert args.output == "out.json"

    def test_simulate_command(self, capsys):
        exit_code = main(["--scale", "0.01", "--seed", "5", "simulate"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "apps:" in out and "posts:" in out

    def test_export_command(self, tmp_path, capsys):
        output = tmp_path / "sample.json"
        exit_code = main(
            ["--scale", "0.01", "--seed", "5", "export", str(output)]
        )
        assert exit_code == 0
        records, labels, _ = load_dataset(output)
        assert records and len(records) == len(labels)
