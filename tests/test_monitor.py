"""The continuous monitoring daemon (PR 8 tentpole).

Pins the contracts ``repro monitor`` is built on:

* with monitoring features off, one epoch is the sequential
  ``crawl_many`` loop byte-for-byte (records *and* clock);
* the tier ladder and the pluggable recrawl policies are deterministic
  pure functions of journaled state;
* scripted lifecycle events are detected as forensic events and force
  apps onto the hot tier;
* an active blackout triggers scheduler-level backpressure (a counted
  pause, a clock jump) instead of retry burn;
* SIGKILL-anywhere resume: interrupting a faulted, blacked-out,
  forensics-on run at arbitrary points and resuming from the journal
  yields a byte-identical history store, schedule, and dataset;
* corrupt or contradictory history lines quarantine to ``.corrupt``
  sidecars without halting;
* the supervised epoch runner restarts killed/hung workers and falls
  back inline, preserving byte-identity throughout.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import ScaleConfig
from repro.crawler.checkpoint import (
    _encode_line,
    record_to_jsonable,
)
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.crawler.monitor import (
    AppMonitor,
    FORENSIC_EVENT_KINDS,
    MonitorConfig,
    MonitorJournal,
    SupervisedEpochRunner,
)
from repro.crawler.recrawl import (
    ActiveLearningPolicy,
    RecrawlScheduler,
    ScheduleEntry,
    TieredPolicy,
    TierLadder,
)
from repro.ecosystem.app_lifecycle import LifecycleScript
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper

MON_SEED = 424242
MON_SCALE = 0.01

#: lifecycle event kind -> the forensic event kind that detects it
_DETECTS = {
    "rename": "rename",
    "permission_change": "permission_change",
    "delete": "deletion",
    "mute": "post_rate_collapse",
}


def build_world(**overrides):
    settings = {
        "scale": MON_SCALE, "master_seed": MON_SEED, "fault_rate": 0.0,
    }
    settings.update(overrides)
    return run_simulation(ScaleConfig(**settings))


def sample_ids(world) -> list[str]:
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    return sorted(DatasetBuilder(world, report).build(crawl=False).d_sample)


@pytest.fixture(scope="module")
def app_ids() -> list[str]:
    return sample_ids(build_world())


class TestTierLadder:
    def test_suspicion_rungs(self):
        ladder = TierLadder()
        assert ladder.classify(90.0, 0, 0) == "hot"
        assert ladder.classify(60.0, 0, 0) == "warm"
        assert ladder.classify(30.0, 0, 0) == "cold"
        assert ladder.classify(5.0, 0, 0) == "dormant"

    def test_forensic_activity_forces_hot(self):
        assert TierLadder().classify(5.0, 0, forensic_hits=1) == "hot"

    def test_age_promotes_one_rung(self):
        ladder = TierLadder()
        # dormant interval is 8: unobserved for 16 epochs -> cold
        assert ladder.classify(5.0, 16, 0) == "cold"
        assert ladder.classify(5.0, 15, 0) == "dormant"

    def test_due(self):
        ladder = TierLadder()
        never = ScheduleEntry(app_id="a")
        assert never.due(0, ladder)
        warm = ScheduleEntry(app_id="a", tier="warm", last_epoch=0)
        assert not warm.due(1, ladder)  # warm interval is 2
        assert warm.due(2, ladder)


class TestPolicies:
    def entries(self):
        return {
            "hot1": ScheduleEntry("hot1", tier="hot", last_epoch=1,
                                  suspicion=90.0),
            "warm1": ScheduleEntry("warm1", tier="warm", last_epoch=0,
                                   suspicion=55.0),
            "cold1": ScheduleEntry("cold1", tier="cold", last_epoch=1,
                                   suspicion=49.0),
            "new1": ScheduleEntry("new1"),
        }

    def test_tiered_policy_crawls_the_due_set_hot_first(self):
        plan = TieredPolicy().plan(self.entries(), epoch=2, ladder=TierLadder())
        # hot interval 1 -> due; warm due after 2 epochs; cold (4) not
        # due; never-observed always due.  Hot rung first, canonical
        # app-ID order within a rung (new1 defaults to warm).
        assert plan == ["hot1", "new1", "warm1"]

    def test_active_learning_adds_boundary_uncertain_extras(self):
        plan = ActiveLearningPolicy(exploration_budget=1).plan(
            self.entries(), epoch=2, ladder=TierLadder()
        )
        # cold1 (|49 - 50| = 1) is the most uncertain not-due app.
        assert plan == ["hot1", "new1", "warm1", "cold1"]

    def test_zero_budget_is_the_tiered_plan(self):
        entries = self.entries()
        ladder = TierLadder()
        assert ActiveLearningPolicy(exploration_budget=0).plan(
            entries, 2, ladder
        ) == TieredPolicy().plan(entries, 2, ladder)


class TestSchedulerState:
    def test_snapshot_restore_roundtrip(self):
        scheduler = RecrawlScheduler()
        scheduler.ensure(["b", "a"])
        scheduler.observe("a", 0, 80.0, forensic_hits=1)
        scheduler.record_pause(123.0)
        image = scheduler.snapshot()
        # Round-trips through JSON (it rides on journal lines).
        image = json.loads(json.dumps(image))
        restored = RecrawlScheduler()
        restored.restore(image)
        assert restored.snapshot() == scheduler.snapshot()
        assert restored.entries["a"].tier == "hot"
        assert restored.pauses == 1


class TestEpochZeroIdentity:
    def test_monitor_epoch_matches_crawl_many_byte_for_byte(
        self, app_ids, tmp_path
    ):
        """Features off => one epoch IS the sequential crawl loop."""
        world = build_world()
        reference = make_crawler(world)
        records = reference.crawl_many(app_ids)
        expected = {a: record_to_jsonable(r) for a, r in records.items()}

        world2 = build_world()
        crawler = make_crawler(world2)
        journal = MonitorJournal(tmp_path / "mon")
        monitor = AppMonitor(
            world2, crawler, app_ids,
            config=MonitorConfig(epochs=1), journal=journal,
        )
        monitor.run()
        journal.close()
        observed = {
            a: record_to_jsonable(r) for a, r in monitor.records().items()
        }
        assert observed == expected
        assert crawler.stats.snapshot() == reference.stats.snapshot()


class TestForensics:
    @pytest.fixture(scope="class")
    def monitored(self, app_ids, tmp_path_factory):
        world = build_world()
        crawler = make_crawler(world)
        journal = MonitorJournal(tmp_path_factory.mktemp("mon"))
        monitor = AppMonitor(
            world, crawler, app_ids,
            config=MonitorConfig(epochs=3, forensics=True, lifecycle=True),
            journal=journal,
        )
        report = monitor.run()
        journal.close()
        return world, monitor, report

    def test_detects_scripted_lifecycle_events(self, monitored, app_ids):
        world, monitor, report = monitored
        assert report.forensic_events, "no forensic events detected"
        # Regenerate the ground-truth script from a *fresh* world:
        # generation reads pre-event app state, and the monitored world
        # has already had the events applied to it.
        pristine = build_world()
        script = LifecycleScript.generate(
            pristine,
            start_day=pristine.schedule.profilefeed_crawl_day,
            horizon_days=21,
        )
        truth = {
            (e.app_id, _DETECTS[e.kind]) for e in script.events
        }
        # The moderation engine's own deletions are the other legitimate
        # source: an app policed on a day between two epochs' summary
        # crawls turns PERMANENT without a scripted lifecycle cause.
        moderated = {
            app.app_id
            for app in pristine.registry.all_apps()
            if app.deleted_day is not None
        }
        for event in report.forensic_events:
            assert event.kind in FORENSIC_EVENT_KINDS
            if event.kind == "deletion" and event.app_id in moderated:
                continue
            assert (event.app_id, event.kind) in truth, (
                f"detected {event.kind} on {event.app_id} without a "
                "scripted lifecycle cause (fault_rate is 0)"
            )

    def test_multiple_kinds_detected(self, monitored):
        _, _, report = monitored
        kinds = {e.kind for e in report.forensic_events}
        assert len(kinds) >= 2

    def test_forensic_hits_force_the_hot_tier(self, monitored):
        # The hot pin applies to the observation that carried the event;
        # a later event-free recrawl may legitimately demote again.
        _, monitor, report = monitored
        checked = 0
        for event in report.forensic_events:
            entry = monitor.scheduler.entries[event.app_id]
            if entry.last_epoch == event.epoch:
                assert entry.tier == "hot"
                checked += 1
        assert checked > 0

    def test_tallies_rebuilt_from_journal(self, monitored):
        _, monitor, report = monitored
        total = sum(
            n for per in monitor.forensic_tallies.values()
            for n in per.values()
        )
        assert total == len(report.forensic_events)

    def test_forensics_off_records_no_events(self, app_ids, tmp_path):
        world = build_world()
        crawler = make_crawler(world)
        journal = MonitorJournal(tmp_path / "mon")
        monitor = AppMonitor(
            world, crawler, app_ids,
            config=MonitorConfig(epochs=2, forensics=False, lifecycle=True),
            journal=journal,
        )
        report = monitor.run()
        journal.close()
        assert report.forensic_events == []


class TestBlackoutBackpressure:
    def test_pause_jumps_the_clock_instead_of_retrying(
        self, app_ids, tmp_path
    ):
        world = build_world(blackouts=1)
        crawler = make_crawler(world)
        plan = crawler.transport.plan
        # One long window the crawl is guaranteed to run into.
        crawler.transport.plan = dataclasses.replace(
            plan, blackout_windows=((10.0, 700.0),)
        )
        journal = MonitorJournal(tmp_path / "mon")
        monitor = AppMonitor(
            world, crawler, app_ids,
            config=MonitorConfig(epochs=1), journal=journal,
        )
        report = monitor.run()
        journal.close()
        assert report.pauses >= 1
        assert monitor.scheduler.paused_until_s == 700.0
        # Backpressure, not retry burn: at most one app's worth of
        # blackout faults (the app whose crawl the window opened under);
        # every later dispatch paused at the poll instead.
        assert crawler.stats.injected.get("blackout", 0) <= 12
        # The pause is a wait on the simulated clock: most of the
        # window's 690 s was slept out, not crawled into.
        assert crawler.stats.wait_s >= 600.0


class TestKillAnywhereResume:
    def test_interrupted_resume_is_byte_identical(self, app_ids, tmp_path):
        """The PR's acceptance invariant, at fault_rate=0.2 with both a
        blackout schedule and forensics+lifecycle enabled."""
        overrides = {"fault_rate": 0.2, "blackouts": 2}
        mc = MonitorConfig(
            epochs=3, stride_days=7, forensics=True, lifecycle=True
        )

        def fresh(journal):
            world = build_world(**overrides)
            return AppMonitor(
                world, make_crawler(world), app_ids, config=mc,
                journal=journal,
            )

        ref_dir = tmp_path / "ref"
        journal = MonitorJournal(ref_dir)
        monitor = fresh(journal)
        monitor.run()
        history = monitor.export_history_bytes()
        dataset = monitor.export_dataset_bytes()
        schedule = monitor.scheduler.snapshot()
        journal.close()

        class Interrupt(Exception):
            pass

        def run_interrupted(step: int) -> AppMonitor:
            directory = tmp_path / f"step{step}"
            journal = MonitorJournal(directory)
            monitor = fresh(journal)
            for _ in range(400):  # bound the loop; never hit in practice
                seen = [0]

                def heartbeat(app_id, fresh_count):
                    seen[0] += 1
                    if seen[0] >= step:
                        # The journal line is already durable: this is
                        # the instant after which SIGKILL may arrive.
                        raise Interrupt()

                try:
                    for epoch in range(monitor._next_epoch, mc.epochs):
                        monitor.run_epoch(epoch, heartbeat=heartbeat)
                    monitor.journal.close()
                    return monitor
                except Interrupt:
                    # Simulated process death: throw everything away and
                    # come back up from nothing but the directory.
                    monitor.journal.close()
                    monitor = fresh(MonitorJournal(directory))
            raise AssertionError("interrupted run never completed")

        for step in (3, 17):
            resumed = run_interrupted(step)
            assert resumed.export_history_bytes() == history
            assert resumed.export_dataset_bytes() == dataset
            assert resumed.scheduler.snapshot() == schedule


class TestJournalQuarantine:
    def payload(self, epoch, app_id, **extra):
        base = {
            "v": 1,
            "app_id": app_id,
            "epoch": epoch,
            "record": {"app_id": app_id, "summary_ok": True},
            "events": [],
            "state": {"epoch": epoch},
        }
        base.update(extra)
        return base

    def write_lines(self, directory, payloads, raw_suffix=b""):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MonitorJournal.JOURNAL_NAME
        with open(path, "wb") as handle:
            for payload in payloads:
                handle.write(_encode_line(payload))
            handle.write(raw_suffix)
        return path

    def test_torn_final_line_truncated_silently(self, tmp_path):
        directory = tmp_path / "mon"
        self.write_lines(
            directory,
            [self.payload(0, "a")],
            raw_suffix=b"deadbeef\t{\"half\": tru",
        )
        journal = MonitorJournal(directory)
        assert journal.truncated_torn_line
        assert journal.quarantined == 0
        assert len(journal.entries) == 1
        journal.close()

    def test_interior_corruption_quarantines_to_sidecar(self, tmp_path):
        directory = tmp_path / "mon"
        good = [self.payload(0, "a"), self.payload(0, "b")]
        path = self.write_lines(directory, good)
        lines = path.read_bytes().splitlines(keepends=True)
        lines.insert(1, b"not a checksum\tnot json\n")
        path.write_bytes(b"".join(lines))
        journal = MonitorJournal(directory)
        assert journal.quarantined == 1
        assert len(journal.entries) == 2
        sidecar = directory / f"{MonitorJournal.JOURNAL_NAME}.corrupt"
        assert sidecar.exists()
        assert b"not a checksum" in sidecar.read_bytes()
        # The journal was rewritten to exactly the survivors: a second
        # open sees a clean file and quarantines nothing.
        journal.close()
        again = MonitorJournal(directory)
        assert again.quarantined == 0
        assert len(again.entries) == 2
        again.close()

    def test_conflicting_observation_quarantined(self, tmp_path):
        directory = tmp_path / "mon"
        first = self.payload(0, "a")
        conflicting = self.payload(0, "a")
        conflicting["record"] = {"app_id": "a", "summary_ok": False}
        self.write_lines(directory, [first, conflicting])
        journal = MonitorJournal(directory)
        assert journal.quarantined == 1
        assert journal._observations[(0, "a")]["record"]["summary_ok"] is True
        journal.close()

    def test_identical_duplicate_dropped_without_quarantine(self, tmp_path):
        directory = tmp_path / "mon"
        entry = self.payload(0, "a")
        self.write_lines(directory, [entry, entry])
        journal = MonitorJournal(directory)
        assert journal.quarantined == 0
        assert len(journal.entries) == 1
        journal.close()

    def test_resurrection_after_deletion_quarantined(self, tmp_path):
        directory = tmp_path / "mon"
        dead = self.payload(
            1, "a",
            record={"app_id": "a", "summary_ok": False},
            events=[{
                "epoch": 1, "app_id": "a", "kind": "deletion", "detail": "",
            }],
        )
        zombie = self.payload(2, "a")  # summary_ok True after deletion
        self.write_lines(directory, [self.payload(0, "a"), dead, zombie])
        journal = MonitorJournal(directory)
        assert journal.quarantined == 1
        assert (2, "a") not in journal._observations
        journal.close()

    def test_malformed_schema_quarantined(self, tmp_path):
        directory = tmp_path / "mon"
        bad = self.payload(0, "a")
        bad["epoch"] = -3
        self.write_lines(directory, [bad, self.payload(0, "b")])
        journal = MonitorJournal(directory)
        assert journal.quarantined == 1
        assert len(journal.entries) == 1
        journal.close()

    def test_fresh_directory_refused_without_resume(self, tmp_path):
        directory = tmp_path / "mon"
        self.write_lines(directory, [self.payload(0, "a")])
        with pytest.raises(FileExistsError):
            MonitorJournal(directory, resume=False)

    def test_fingerprint_mismatch_refused(self, app_ids, tmp_path):
        world = build_world()
        journal = MonitorJournal(tmp_path / "mon")
        AppMonitor(
            world, make_crawler(world), app_ids,
            config=MonitorConfig(epochs=2), journal=journal,
        )
        journal.close()
        journal = MonitorJournal(tmp_path / "mon")
        world2 = build_world()
        with pytest.raises(ValueError, match="different configuration"):
            AppMonitor(
                world2, make_crawler(world2), app_ids,
                config=MonitorConfig(epochs=3), journal=journal,
            )
        journal.close()


class TestSupervisedRunner:
    def reference_history(self, app_ids, tmp_path):
        world = build_world()
        journal = MonitorJournal(tmp_path / "ref")
        monitor = AppMonitor(
            world, make_crawler(world), app_ids,
            config=MonitorConfig(epochs=1), journal=journal,
        )
        monitor.run()
        journal.close()
        return monitor.export_history_bytes()

    def test_killed_worker_restarts_and_stays_byte_identical(
        self, app_ids, tmp_path
    ):
        expected = self.reference_history(app_ids, tmp_path)
        world = build_world()
        journal = MonitorJournal(tmp_path / "mon")
        monitor = AppMonitor(
            world, make_crawler(world), app_ids,
            config=MonitorConfig(epochs=1), journal=journal,
        )
        runner = SupervisedEpochRunner(
            monitor, chaos=("kill", 5), heartbeat_timeout_s=10.0
        )
        runner.run_epoch(0)
        journal.close()
        assert runner.restarts == 1
        assert monitor.export_history_bytes() == expected

    def test_hung_worker_reaped_by_heartbeat_deadline(
        self, app_ids, tmp_path
    ):
        expected = self.reference_history(app_ids, tmp_path)
        world = build_world()
        journal = MonitorJournal(tmp_path / "mon")
        monitor = AppMonitor(
            world, make_crawler(world), app_ids,
            config=MonitorConfig(epochs=1), journal=journal,
        )
        runner = SupervisedEpochRunner(
            monitor, chaos=("hang", 3), heartbeat_timeout_s=0.5
        )
        runner.run_epoch(0)
        journal.close()
        assert runner.heartbeat_gaps == 1
        assert runner.restarts == 1
        assert monitor.export_history_bytes() == expected

    def test_exhausted_restart_budget_falls_back_inline(
        self, app_ids, tmp_path, monkeypatch
    ):
        expected = self.reference_history(app_ids, tmp_path)
        world = build_world()
        journal = MonitorJournal(tmp_path / "mon")
        monitor = AppMonitor(
            world, make_crawler(world), app_ids,
            config=MonitorConfig(epochs=1), journal=journal,
        )
        runner = SupervisedEpochRunner(
            monitor, chaos=("kill", 2), heartbeat_timeout_s=10.0,
            max_restarts=0,
        )
        # With zero restarts the one (killed) incarnation exhausts the
        # budget and the epoch must finish inline, unconditionally.
        runner.run_epoch(0)
        journal.close()
        assert runner.inline_fallbacks == 1
        assert monitor.export_history_bytes() == expected

    def test_no_journal_runs_inline_directly(self, app_ids):
        world = build_world()
        monitor = AppMonitor(
            world, make_crawler(world), app_ids[:5],
            config=MonitorConfig(epochs=1),
        )
        runner = SupervisedEpochRunner(monitor, chaos=("kill", 1))
        runner.run_epoch(0)
        assert runner.inline_fallbacks == 1
        assert runner.restarts == 0

    def test_chaos_env_parsing(self, monkeypatch):
        from repro.crawler.monitor import MONITOR_CHAOS_ENV, _chaos_from_env

        monkeypatch.setenv(MONITOR_CHAOS_ENV, "kill:7")
        assert _chaos_from_env() == ("kill", 7)
        monkeypatch.setenv(MONITOR_CHAOS_ENV, "hang:0")
        assert _chaos_from_env() == ("hang", 0)
        monkeypatch.setenv(MONITOR_CHAOS_ENV, "explode:1")
        with pytest.raises(ValueError):
            _chaos_from_env()
        monkeypatch.delenv(MONITOR_CHAOS_ENV)
        assert _chaos_from_env() is None


class TestForensicFeatureColumns:
    def test_columns_off_by_default(self):
        from repro.core.features import (
            ALL_FEATURES,
            FORENSIC_FEATURES,
            FeatureExtractor,
        )

        world = build_world()
        extractor = FeatureExtractor(world)
        assert not extractor.forensics_enabled
        assert extractor.feature_names() == ALL_FEATURES
        for name in FORENSIC_FEATURES:
            assert name not in ALL_FEATURES

    def test_columns_appear_when_tallies_attached(self, app_ids):
        from repro.core.features import (
            ALL_FEATURES,
            FORENSIC_FEATURES,
            FeatureExtractor,
        )

        world = build_world()
        crawler = make_crawler(world)
        record = crawler.crawl_app(app_ids[0])
        extractor = FeatureExtractor(world)
        extractor.set_forensics({
            app_ids[0]: {"deletion": 1, "rename": 2},
        })
        assert extractor.forensics_enabled
        assert extractor.feature_names() == ALL_FEATURES + FORENSIC_FEATURES
        assert extractor.feature_value("forensic_event_count", record) == 3.0
        assert extractor.feature_value("forensic_deletion", record) == 1.0
        assert extractor.feature_value("forensic_rename", record) == 2.0
        assert extractor.feature_value("forensic_permission_change", record) == 0.0
