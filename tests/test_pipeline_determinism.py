"""End-to-end determinism: the whole study is a function of the seed.

This includes the faulted study: the fault plan, the retry jitter, and
every injected failure are derived from the master seed, so a chaos run
is exactly as reproducible as a fault-free one.
"""

from repro.config import ScaleConfig
from repro.core.pipeline import FrappePipeline


def _run(seed: int, fault_rate: float = 0.0):
    return FrappePipeline(
        ScaleConfig(scale=0.01, master_seed=seed, fault_rate=fault_rate)
    ).run(sweep_unlabelled=True)


class TestPipelineDeterminism:
    def test_same_seed_identical_study(self):
        a = _run(1234)
        b = _run(1234)
        assert a.bundle.d_sample_malicious == b.bundle.d_sample_malicious
        assert a.bundle.d_sample_benign == b.bundle.d_sample_benign
        assert a.bundle.whitelist == b.bundle.whitelist
        assert a.flagged_new == b.flagged_new
        assert (
            a.validation.validated_fraction == b.validation.validated_fraction
        )
        # Crawl records agree field by field for a sample app.
        app_id = sorted(a.bundle.d_sample)[0]
        record_a = a.bundle.records[app_id]
        record_b = b.bundle.records[app_id]
        assert record_a.permissions == record_b.permissions
        assert record_a.mau_observations == record_b.mau_observations
        assert record_a.redirect_uri == record_b.redirect_uri

    def test_different_seed_different_study(self):
        a = _run(1234)
        b = _run(4321)
        assert a.bundle.d_sample_malicious != b.bundle.d_sample_malicious


class TestFaultedPipelineDeterminism:
    """Same seed + same fault plan => the identical degraded study."""

    def test_same_seed_identical_chaos_study(self):
        a = _run(1234, fault_rate=0.2)
        b = _run(1234, fault_rate=0.2)
        assert a.bundle.d_sample_malicious == b.bundle.d_sample_malicious
        assert a.bundle.d_sample_benign == b.bundle.d_sample_benign
        assert a.flagged_new == b.flagged_new
        # The injected faults themselves replay exactly.
        assert a.transport_stats.requests == b.transport_stats.requests
        assert a.transport_stats.injected == b.transport_stats.injected
        assert a.transport_stats.vanished == b.transport_stats.vanished
        assert a.transport_stats.elapsed_s == b.transport_stats.elapsed_s
        # Per-collection outcomes agree record by record.
        for app_id in sorted(a.bundle.d_sample):
            outcomes_a = a.bundle.records[app_id].outcomes
            outcomes_b = b.bundle.records[app_id].outcomes
            assert {c: o.status for c, o in outcomes_a.items()} == {
                c: o.status for c, o in outcomes_b.items()
            }
            assert {c: o.faults for c, o in outcomes_a.items()} == {
                c: o.faults for c, o in outcomes_b.items()
            }

    def test_fault_free_study_has_no_fault_machinery_residue(self):
        result = _run(1234)
        assert result.cascade is None
        assert result.transport_stats.fault_count() == 0
        assert not result.transport_stats.vanished
        assert result.transport_stats.wait_s == 0.0
