"""End-to-end determinism: the whole study is a function of the seed."""

from repro.config import ScaleConfig
from repro.core.pipeline import FrappePipeline


def _run(seed: int):
    return FrappePipeline(ScaleConfig(scale=0.01, master_seed=seed)).run(
        sweep_unlabelled=True
    )


class TestPipelineDeterminism:
    def test_same_seed_identical_study(self):
        a = _run(1234)
        b = _run(1234)
        assert a.bundle.d_sample_malicious == b.bundle.d_sample_malicious
        assert a.bundle.d_sample_benign == b.bundle.d_sample_benign
        assert a.bundle.whitelist == b.bundle.whitelist
        assert a.flagged_new == b.flagged_new
        assert (
            a.validation.validated_fraction == b.validation.validated_fraction
        )
        # Crawl records agree field by field for a sample app.
        app_id = sorted(a.bundle.d_sample)[0]
        record_a = a.bundle.records[app_id]
        record_b = b.bundle.records[app_id]
        assert record_a.permissions == record_b.permissions
        assert record_a.mau_observations == record_b.mau_observations
        assert record_a.redirect_uri == record_b.redirect_uri

    def test_different_seed_different_study(self):
        a = _run(1234)
        b = _run(4321)
        assert a.bundle.d_sample_malicious != b.bundle.d_sample_malicious
