"""Graceful degradation: tiers, the cascade, and watchdog confidence.

Verifies that classification falls back through
FRAppE -> FRAppE Lite -> summary-only as transient crawl failures take
collections away, that *authoritative* missingness (app removed) stays
on the full-FRAppE path, that the ``client_id_mismatch`` tri-state never
conflates "unverified" with "mismatch observed", and that the watchdog
degrades stale cached verdicts instead of silently serving them.
"""

from __future__ import annotations

import copy

import pytest

from repro.core.features import (
    ALL_FEATURES,
    CONFIDENCE_BY_TIER,
    ON_DEMAND_FEATURES,
    SUMMARY_ONLY_FEATURES,
    TIER_FEATURES,
    classification_tier,
)
from repro.core.frappe import FrappeCascade, frappe
from repro.core.watchdog import AppWatchdog
from repro.crawler.crawler import CrawlRecord
from repro.crawler.resilience import GAVE_UP, OK, PERMANENT, CrawlOutcome


def record_with(statuses: dict[str, str], **fields) -> CrawlRecord:
    record = CrawlRecord(app_id=fields.pop("app_id", "1000000000000000"), **fields)
    for collection, status in statuses.items():
        record.outcomes[collection] = CrawlOutcome(collection, status=status)
    return record


def degraded_copy(record: CrawlRecord, *collections: str) -> CrawlRecord:
    clone = copy.deepcopy(record)
    for collection in collections:
        clone.outcomes[collection] = CrawlOutcome(
            collection, status=GAVE_UP, faults=["server_error"]
        )
    return clone


@pytest.fixture(scope="module")
def cascade(pipeline_result) -> FrappeCascade:
    records, labels = pipeline_result.sample_records()
    return FrappeCascade(pipeline_result.extractor).fit(records, labels)


class TestClassificationTier:
    def test_clean_crawl_is_full_frappe(self):
        record = record_with({c: OK for c in ("summary", "feed", "install")})
        assert classification_tier(record) == "frappe"

    def test_no_outcome_bookkeeping_is_authoritative(self):
        # Records loaded from an export predate outcome tracking.
        assert classification_tier(CrawlRecord(app_id="42")) == "frappe"

    def test_authoritative_missingness_keeps_the_full_model(self):
        # App removed: the empty summary IS the signal (Sec 4.1).
        record = record_with(
            {"summary": PERMANENT, "feed": PERMANENT, "install": PERMANENT}
        )
        assert classification_tier(record) == "frappe"

    def test_one_transient_loss_degrades_to_lite(self):
        for lost in ("feed", "install"):
            record = record_with({"summary": OK, lost: GAVE_UP})
            assert classification_tier(record) == "lite"

    def test_both_on_demand_losses_degrade_to_summary_only(self):
        record = record_with(
            {"summary": OK, "feed": GAVE_UP, "install": GAVE_UP}
        )
        assert classification_tier(record) == "summary_only"

    def test_summary_loss_means_no_evidence_at_all(self):
        record = record_with({"summary": GAVE_UP, "feed": OK, "install": OK})
        assert classification_tier(record) == "none"

    def test_tier_feature_sets(self):
        assert TIER_FEATURES["frappe"] == ALL_FEATURES
        assert TIER_FEATURES["lite"] == ON_DEMAND_FEATURES
        assert TIER_FEATURES["summary_only"] == SUMMARY_ONLY_FEATURES
        assert set(CONFIDENCE_BY_TIER) == {"frappe", "lite", "summary_only", "none"}


class TestClientIdMismatchTriState:
    def test_missing_install_crawl_is_none(self):
        assert CrawlRecord(app_id="1").client_id_mismatch is None

    def test_verified_match_is_false(self):
        record = CrawlRecord(app_id="1", inst_ok=True, observed_client_id="1")
        assert record.client_id_mismatch is False

    def test_mismatch_is_true(self):
        record = CrawlRecord(app_id="1", inst_ok=True, observed_client_id="2")
        assert record.client_id_mismatch is True

    def test_feature_encodes_missing_and_benign_identically(self, pipeline_result):
        # The paper's D-Inst protocol: the feature is 0.0 for both
        # "verified match" and "nothing collected" — the distinction is
        # carried by the tier machinery, not the Lite feature vector.
        extractor = pipeline_result.extractor
        missing = CrawlRecord(app_id="1")
        benign = CrawlRecord(app_id="1", inst_ok=True, observed_client_id="1")
        hijacked = CrawlRecord(app_id="1", inst_ok=True, observed_client_id="2")
        value = extractor.feature_value
        assert value("client_id_mismatch", missing) == 0.0
        assert value("client_id_mismatch", benign) == 0.0
        assert value("client_id_mismatch", hijacked) == 1.0

    def test_advisory_never_fires_on_unverified(self, pipeline_result, cascade):
        # An advisory claiming "hands out a different app's client ID"
        # over a crawl that never saw the install URL would be a lie.
        watchdog = AppWatchdog(
            cascade, pipeline_result.extractor, crawler=None
        )
        records, labels = pipeline_result.sample_records()
        mismatch_note = "its install URL hands out a different app's client ID"
        for record, label in zip(records, labels):
            if label != 1 or record.inst_ok:
                continue
            assessment = watchdog.assess_record(record)
            assert all(mismatch_note not in note for note in assessment.advisories)


class TestFrappeCascade:
    def test_drop_in_on_clean_records(self, pipeline_result, cascade):
        records, labels = pipeline_result.sample_records()
        plain = frappe(pipeline_result.extractor).fit(records, labels)
        assert (cascade.predict(records) == plain.predict(records)).all()

    def test_degraded_records_route_to_their_tier_model(
        self, pipeline_result, cascade
    ):
        records, _ = pipeline_result.sample_records()
        sample = records[:10]
        lite_copies = [degraded_copy(r, "install") for r in sample]
        expected = cascade.model("lite").predict(lite_copies)
        assert (cascade.predict(lite_copies) == expected).all()
        summary_copies = [degraded_copy(r, "feed", "install") for r in sample]
        expected = cascade.model("summary_only").predict(summary_copies)
        assert (cascade.predict(summary_copies) == expected).all()

    def test_tier_none_declines_to_condemn(self, pipeline_result, cascade):
        records, labels = pipeline_result.sample_records()
        # Pick a record the full model condemns; losing the summary
        # crawl transiently must withdraw that verdict, not zero-fill it.
        condemned = next(
            r
            for r, label in zip(records, labels)
            if label == 1 and cascade.predict_one(r)
        )
        blinded = degraded_copy(condemned, "summary")
        assert not cascade.predict_one(blinded)
        assert cascade.decision_function_one(blinded) == (0.0, "none")

    def test_mixed_batch_prediction_matches_per_record(
        self, pipeline_result, cascade
    ):
        records, _ = pipeline_result.sample_records()
        batch = [
            records[0],
            degraded_copy(records[1], "feed"),
            degraded_copy(records[2], "feed", "install"),
            degraded_copy(records[3], "summary"),
        ]
        batched = cascade.predict(batch)
        singles = [cascade.predict_one(r) for r in batch]
        assert list(batched.astype(bool)) == singles


class TestWatchdogConfidence:
    def test_confidence_follows_the_tier(self, pipeline_result, cascade):
        watchdog = AppWatchdog(cascade, pipeline_result.extractor, crawler=None)
        records, _ = pipeline_result.sample_records()
        record = records[0]
        assert watchdog.assess_record(record).confidence == "high"
        for collections, expected in (
            (("install",), "medium"),
            (("feed", "install"), "low"),
            (("summary",), "none"),
        ):
            degraded = degraded_copy(record, *collections)
            assessment = watchdog.assess_record(degraded)
            assert assessment.confidence == expected
            assert f"[confidence: {expected}]" in assessment.summary()

    def test_degraded_collections_are_disclosed(self, pipeline_result, cascade):
        watchdog = AppWatchdog(cascade, pipeline_result.extractor, crawler=None)
        records, _ = pipeline_result.sample_records()
        degraded = degraded_copy(records[0], "feed")
        assessment = watchdog.assess_record(degraded)
        assert any(
            "profile-feed crawl could not be completed" in note
            for note in assessment.advisories
        )


class _ScriptedCrawler:
    """crawl_app returns the queued records, repeating the last one."""

    def __init__(self, *records: CrawlRecord) -> None:
        self._records = list(records)
        self.calls = 0

    def crawl_app(self, app_id: str) -> CrawlRecord:
        self.calls += 1
        index = min(self.calls - 1, len(self._records) - 1)
        return copy.deepcopy(self._records[index])


class TestWatchdogStaleness:
    def make_watchdog(self, pipeline_result, cascade, *scripted_records):
        crawler = _ScriptedCrawler(*scripted_records)
        return (
            AppWatchdog(
                cascade,
                pipeline_result.extractor,
                crawler,
                max_staleness_days=14,
            ),
            crawler,
        )

    def base_record(self, pipeline_result):
        records, labels = pipeline_result.sample_records()
        return next(r for r, label in zip(records, labels) if label == 1)

    def test_fresh_cache_skips_the_crawl(self, pipeline_result, cascade):
        record = self.base_record(pipeline_result)
        watchdog, crawler = self.make_watchdog(pipeline_result, cascade, record)
        first = watchdog.assess(record.app_id, day=0)
        again = watchdog.assess(record.app_id, day=10)
        assert crawler.calls == 1
        assert again is first

    def test_stale_cache_triggers_a_recrawl(self, pipeline_result, cascade):
        record = self.base_record(pipeline_result)
        watchdog, crawler = self.make_watchdog(pipeline_result, cascade, record)
        watchdog.assess(record.app_id, day=0)
        refreshed = watchdog.assess(record.app_id, day=30)
        assert crawler.calls == 2
        assert refreshed.assessed_day == 30
        assert refreshed.confidence == "high"

    def test_failed_recrawl_degrades_the_cached_verdict(
        self, pipeline_result, cascade
    ):
        record = self.base_record(pipeline_result)
        dead_crawl = degraded_copy(record, "summary")
        watchdog, crawler = self.make_watchdog(
            pipeline_result, cascade, record, dead_crawl
        )
        original = watchdog.assess(record.app_id, day=0)
        degraded = watchdog.assess(record.app_id, day=30)
        assert crawler.calls == 2
        # Same verdict, degraded confidence — not a zero-filled rescore,
        # not a silently served stale entry.
        assert degraded.risk_score == original.risk_score
        assert degraded.confidence == "stale"
        assert degraded.assessed_day == 30
        assert any("re-crawl failed" in note for note in degraded.advisories)
        assert "[confidence: stale]" in degraded.summary()
        # The degraded entry is cached until it goes stale in turn.
        assert watchdog.assess(record.app_id, day=35) is degraded

    def test_first_ever_crawl_failing_still_produces_a_verdict(
        self, pipeline_result, cascade
    ):
        # No cached assessment to fall back on: the tier-none record is
        # assessed (prediction 0, confidence "none") rather than erroring.
        record = self.base_record(pipeline_result)
        dead_crawl = degraded_copy(record, "summary")
        watchdog, crawler = self.make_watchdog(pipeline_result, cascade, dead_crawl)
        assessment = watchdog.assess(record.app_id, day=0)
        assert assessment.confidence == "none"
        assert not assessment.is_risky


class TestOutcomeSerialization:
    def test_outcomes_survive_an_export_round_trip(
        self, pipeline_result, tmp_path
    ):
        from repro.io import export_dataset, load_dataset

        path = export_dataset(pipeline_result, tmp_path / "dataset.json")
        records, _, _ = load_dataset(path)
        originals = {a: r for a, r in pipeline_result.bundle.records.items()}
        for loaded in records:
            original = originals[loaded.app_id]
            assert set(loaded.outcomes) == set(original.outcomes)
            for collection, outcome in loaded.outcomes.items():
                source = original.outcomes[collection]
                assert outcome.status == source.status
                assert outcome.attempts == source.attempts
                assert outcome.faults == source.faults
            assert classification_tier(loaded) == classification_tier(original)

    def test_legacy_records_without_outcomes_read_as_authoritative(self):
        from repro.io import _record_from_dict

        loaded = _record_from_dict(
            {"app_id": "7", "summary_ok": True, "feed_ok": False, "inst_ok": False}
        )
        assert loaded.outcomes == {}
        assert classification_tier(loaded) == "frappe"
        assert not loaded.degraded
