"""The analytics store: schema, idempotent ingestion, queries, report.

The contracts under test (see :mod:`repro.store.db`):

* every ingest is stamped with the schema version current at write time;
* re-offering an already-ingested artifact changes **zero file bytes**;
* two fresh stores built by the same ingest sequence are byte-identical
  files;
* torn/corrupt inputs are absorbed the way the crawl WAL absorbs its
  journal (final line truncated, interior lines quarantined to a
  ``.corrupt`` sidecar);
* ``ServiceReport.snapshot()`` JSON-round-trips and rebuilds
  :meth:`summary` byte-for-byte;
* the stored-data queries agree with the in-process tallies, and
  ``repro report --paper-only`` is byte-identical to the
  ``repro experiments`` stdout it was fed from.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.config import ScaleConfig
from repro.core.pipeline import FrappePipeline
from repro.crawler.checkpoint import _encode_line
from repro.service import (
    LoadProfile,
    estimate_capacity_rps,
    generate_requests,
    make_service,
)
from repro.service.service import ServiceReport
from repro.store import (
    SCHEMA_VERSION,
    AnalyticsStore,
    StoreSink,
    appnet_evolution,
    campaign_timeline,
    census,
    ingest_incidents,
    ingest_metrics_text,
    ingest_monitor_history,
    ingest_service_report,
    ingest_trace,
    ingest_trace_text,
    render_paper_tables,
    rung_mix,
    slo_burndown,
    version_mix,
)
from repro.store.db import StoreSchemaError

from tests.conftest import TEST_SCALE, TEST_SEED

TRACE_TEXT = (
    json.dumps({
        "category": "crawl", "key": "app1", "name": "crawl_app",
        "t_start": 0.0, "t_end": 2.0, "attrs": {"attempts": 2},
        "events": [{"name": "fault", "t": 0.5, "attrs": {"kind": "t"}}],
        "children": [{
            "category": "crawl", "key": "app1.fetch", "name": "fetch",
            "t_start": 0.5, "t_end": 1.5, "attrs": {},
            "events": [], "children": [],
        }],
    }, sort_keys=True)
    + "\n"
    + json.dumps({
        "category": "serve", "key": "r0", "name": "score",
        "t_start": 3.0, "t_end": 4.0, "attrs": {},
        "events": [], "children": [],
    }, sort_keys=True)
    + "\n"
)

METRICS_TEXT = (
    json.dumps({"type": "counter", "name": "requests_total",
                "labels": {}, "value": 7.0}, sort_keys=True)
    + "\n"
    + json.dumps({"type": "histogram", "name": "latency_s", "labels": {},
                  "sum": 3.5, "count": 4, "edges": [1.0, 2.0],
                  "counts": [3, 1, 0]}, sort_keys=True)
    + "\n"
)


def file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.fixture(scope="module")
def service_run():
    """A private faulted serve run with a bad canary (so incidents exist)."""
    from repro.cli import _build_canary_rollout

    result = FrappePipeline(
        ScaleConfig(scale=TEST_SCALE, master_seed=TEST_SEED, fault_rate=0.2)
    ).run(sweep_unlabelled=False)
    service = make_service(result)
    service.rollout = _build_canary_rollout(service, "bad")
    capacity = estimate_capacity_rps(result.world.schedule)
    profile = LoadProfile(
        n_requests=200, rate_rps=capacity * 2.0,
        interactive_fraction=0.7, pool_size=60, seed=TEST_SEED,
    )
    report = service.serve(
        generate_requests(sorted(result.bundle.d_sample), profile)
    )
    return report, list(service.rollout.incidents)


# -- schema and stamping ------------------------------------------------------


class TestSchema:
    def test_schema_version_stamped_on_store_and_ingests(self, tmp_path):
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            assert store.schema_version() == SCHEMA_VERSION
            ingest_trace_text(store, TRACE_TEXT, label="t")
            rows = store.query("SELECT kind, schema_version FROM ingests")
            assert rows == [("trace", SCHEMA_VERSION)]
            assert census(store)[0].schema_version == SCHEMA_VERSION

    def test_newer_schema_era_is_refused(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with AnalyticsStore(path) as store:
            with store.transaction() as con:
                con.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (str(SCHEMA_VERSION + 1),),
                )
        with pytest.raises(StoreSchemaError):
            AnalyticsStore(path)

    def test_readonly_requires_existing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            AnalyticsStore(tmp_path / "missing.sqlite", readonly=True)

    def test_non_store_file_is_refused(self, tmp_path):
        path = tmp_path / "bogus.sqlite"
        path.write_bytes(b"")
        with pytest.raises(StoreSchemaError):
            AnalyticsStore(path, readonly=True)


# -- trace and metrics ingestion ---------------------------------------------


class TestTraceIngest:
    def test_nested_spans_are_flattened_preorder(self, tmp_path):
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            result = ingest_trace_text(store, TRACE_TEXT, label="t")
            assert result.rows == 3 and not result.skipped
            spans = store.query(
                "SELECT ord, root_ord, parent_ord, depth, key FROM spans "
                "ORDER BY ord"
            )
            assert spans == [
                (0, 0, None, 0, "app1"),
                (1, 0, 0, 1, "app1.fetch"),
                (2, 2, None, 0, "r0"),
            ]
            events = store.query(
                "SELECT span_ord, name, t FROM span_events"
            )
            assert events == [(0, "fault", 0.5)]

    def test_metrics_ingest_keeps_histograms(self, tmp_path):
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            result = ingest_metrics_text(store, METRICS_TEXT, label="m")
            assert result.rows == 2
            rows = store.query(
                "SELECT type, name, value, sum, count, edges FROM metrics "
                "ORDER BY ord"
            )
            assert rows[0] == ("counter", "requests_total", 7.0,
                               None, None, None)
            assert rows[1][:2] == ("histogram", "latency_s")
            assert json.loads(rows[1][5]) == [1.0, 2.0]

    def test_store_sink_flush_matches_file_export(self, tmp_path):
        """The sink persists the same bytes --trace would export, so a
        later file ingest of that export is recognised as a duplicate."""
        sink = StoreSink()
        with sink.tracer.span("crawl_app", category="crawl", key="a"):
            sink.count("x_total")
        trace_file = tmp_path / "trace.jsonl"
        trace_file.write_text(sink.tracer.to_jsonl())
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            results = sink.flush(store, label="run")
            assert results and not any(r.skipped for r in results)
            again = ingest_trace(store, trace_file)
            assert again.skipped


# -- idempotency and determinism ---------------------------------------------


class TestIdempotency:
    def test_reingest_changes_zero_file_bytes(self, tmp_path):
        path = tmp_path / "s.sqlite"
        trace_file = tmp_path / "trace.jsonl"
        trace_file.write_text(TRACE_TEXT)
        with AnalyticsStore(path) as store:
            ingest_trace(store, trace_file)
        before = file_sha(path)
        with AnalyticsStore(path) as store:
            result = ingest_trace(store, trace_file)
            assert result.skipped
        assert file_sha(path) == before

    def test_fresh_builds_are_byte_identical(self, tmp_path):
        shas = []
        for name in ("a.sqlite", "b.sqlite"):
            with AnalyticsStore(tmp_path / name) as store:
                ingest_trace_text(store, TRACE_TEXT, label="t")
                ingest_metrics_text(store, METRICS_TEXT, label="m")
            shas.append(file_sha(tmp_path / name))
        assert shas[0] == shas[1]

    def test_same_content_different_kind_is_not_a_duplicate(self, tmp_path):
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            ingest_trace_text(store, TRACE_TEXT, label="t")
            # metrics ingest of different text: both land
            result = ingest_metrics_text(store, METRICS_TEXT, label="m")
            assert not result.skipped
            assert [r.kind for r in census(store)] == ["trace", "metrics"]


# -- torn and corrupt inputs --------------------------------------------------


class TestCorruptInputs:
    def test_torn_final_line_is_truncated(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        trace_file.write_bytes(
            TRACE_TEXT.encode() + b'{"category":"crawl","key":"to'
        )
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            result = ingest_trace(store, trace_file)
            assert result.torn and not result.quarantined
            assert result.rows == 3  # the survivors only
            # the torn file hashes like the clean one: re-ingest of the
            # repaired export is a no-op
            clean = tmp_path / "clean.jsonl"
            clean.write_text(TRACE_TEXT)
            assert ingest_trace(store, clean).skipped

    def test_interior_corruption_is_quarantined_to_sidecar(self, tmp_path):
        lines = TRACE_TEXT.splitlines()
        trace_file = tmp_path / "trace.jsonl"
        trace_file.write_text(
            lines[0] + "\n" + "NOT JSON \x00garbage\n" + lines[1] + "\n"
        )
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            result = ingest_trace(store, trace_file)
            assert result.quarantined == 1 and not result.torn
            assert result.rows == 3
            sidecar = tmp_path / "trace.jsonl.corrupt"
            assert sidecar.read_text() == "NOT JSON \x00garbage\n"
            # input file itself is never rewritten
            assert "garbage" in trace_file.read_text()


# -- serve snapshots ----------------------------------------------------------


class TestServeSnapshots:
    def test_snapshot_json_round_trips_summary_bytes(self, service_run):
        report, _ = service_run
        snapshot = json.loads(json.dumps(report.snapshot()))
        rebuilt = ServiceReport.from_snapshot(snapshot)
        assert rebuilt.summary() == report.summary()
        assert rebuilt.outcome_counts() == report.outcome_counts()
        assert rebuilt.rung_counts() == report.rung_counts()

    def test_embedded_incidents_hash_like_the_inprocess_sink(
        self, tmp_path, service_run
    ):
        """A --snapshot-out file (incidents embedded) must dedup against
        the in-process ingest of the same run."""
        report, incidents = service_run
        snapshot = report.snapshot()
        snapshot["incidents"] = [inc.jsonable() for inc in incidents]
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            first = ingest_service_report(
                store, report.snapshot(), label="live", incidents=incidents
            )
            assert not first.skipped
            # simulate `repro ingest --serve-snapshot`: dict from the file
            again = ingest_service_report(
                store, json.loads(json.dumps(snapshot)), label="file"
            )
            assert again.skipped and again.ingest_id == first.ingest_id

    def test_queries_agree_with_inprocess_tallies(
        self, tmp_path, service_run
    ):
        report, incidents = service_run
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            ingest_service_report(
                store, report.snapshot(), label="run", incidents=incidents
            )
            outcome = report.outcome_counts()
            burndown = slo_burndown(store)
            assert sum(w.requests for w in burndown) == len(report.responses)
            assert sum(w.served for w in burndown) == outcome.get("served", 0)
            assert all(
                w.violations == w.requests - w.served for w in burndown
            )
            # cumulative budget burn is monotone
            spent = [w.budget_spent for w in burndown]
            assert spent == sorted(spent)

            mix = rung_mix(store)
            rungs: dict[str, int] = {}
            for window in mix:
                for rung, count in window.rungs.items():
                    rungs[rung] = rungs.get(rung, 0) + count
            assert rungs == report.rung_counts()

            versions = version_mix(store)
            assert sum(
                count for v in versions for count in v.outcomes.values()
            ) == len(report.responses)
            stored_incidents = store.query(
                "SELECT canary_version, restored_version "
                "FROM rollout_incidents ORDER BY ord"
            )
            assert len(stored_incidents) == len(incidents)

    def test_incident_file_ingest(self, tmp_path, service_run):
        _, incidents = service_run
        assert incidents, "bad canary must have tripped the health gate"
        path = tmp_path / "incidents.jsonl"
        path.write_text("".join(
            json.dumps(inc.jsonable(), sort_keys=True) + "\n"
            for inc in incidents
        ))
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            result = ingest_incidents(store, path)
            assert result.rows == len(incidents)
            assert ingest_incidents(store, path).skipped


# -- monitor histories --------------------------------------------------------


def write_monitor_journal(directory: Path, entries: list[dict]) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "monitor.jsonl"
    with open(path, "wb") as handle:
        for entry in entries:
            handle.write(_encode_line(entry))
    return path


def observation(epoch: int, app_id: str, alive: bool,
                events: list[dict] | None = None) -> dict:
    return {
        "v": 1, "app_id": app_id, "epoch": epoch,
        "record": {"app_id": app_id, "summary_ok": alive},
        "assessment": None, "events": events or [], "state": {},
    }


class TestMonitorIngest:
    def test_history_ingest_and_evolution_queries(self, tmp_path):
        journal = [
            {"v": 1, "app_id": "__plan__", "epoch": 0,
             "plan": ["a", "b"], "state": {}},
            observation(0, "a", True),
            observation(0, "b", True),
            observation(1, "a", True, events=[
                {"epoch": 1, "app_id": "a", "kind": "permission_change",
                 "detail": "+publish_stream"},
            ]),
            observation(1, "b", False, events=[
                {"epoch": 1, "app_id": "b", "kind": "deletion", "detail": ""},
            ]),
        ]
        write_monitor_journal(tmp_path / "mon", journal)
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            result = ingest_monitor_history(store, tmp_path / "mon")
            assert result.rows == 4  # the plan entry is not an observation

            evolution = appnet_evolution(store)
            assert [(e.epoch, e.observed, e.alive, e.deleted_cumulative)
                    for e in evolution] == [(0, 2, 2, 0), (1, 2, 1, 1)]
            assert evolution[1].events == {
                "deletion": 1, "permission_change": 1,
            }
            timeline = campaign_timeline(store)
            assert [(r.epoch, r.kind, r.count, r.apps)
                    for r in timeline] == [
                (1, "deletion", 1, ("b",)),
                (1, "permission_change", 1, ("a",)),
            ]
            assert ingest_monitor_history(store, tmp_path / "mon").skipped

    def test_corrupt_interior_journal_line_is_quarantined(self, tmp_path):
        path = write_monitor_journal(tmp_path / "mon", [
            observation(0, "a", True),
            observation(0, "b", True),
        ])
        raw = path.read_bytes().split(b"\n")
        raw[0] = b"0" * 64 + b"\t{\"checksum\": \"mismatch\"}"
        path.write_bytes(b"\n".join(raw))
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            result = ingest_monitor_history(store, tmp_path / "mon")
            assert result.quarantined == 1 and result.rows == 1
            assert (tmp_path / "mon" / "monitor.jsonl.corrupt").exists()


# -- the paper tables, from store --------------------------------------------


class TestReport:
    def test_paper_tables_from_store_are_byte_identical(
        self, tmp_path, capsys
    ):
        """repro experiments --store, then repro report --paper-only:
        the from-store rendering is the in-process stdout, byte for byte."""
        from repro import cli

        path = tmp_path / "s.sqlite"
        assert cli.main([
            "--scale", str(TEST_SCALE), "--seed", str(TEST_SEED),
            "--store", str(path), "experiments",
        ]) == 0
        inprocess = capsys.readouterr().out
        assert cli.main(["--store", str(path), "report", "--paper-only"]) == 0
        assert capsys.readouterr().out == inprocess
        with AnalyticsStore(path, readonly=True) as store:
            assert render_paper_tables(store) == inprocess

    def test_full_report_renders_all_ingested_sections(
        self, tmp_path, service_run
    ):
        from repro.store import render_report

        report, incidents = service_run
        write_monitor_journal(tmp_path / "mon", [
            observation(0, "a", True),
            observation(1, "a", False, events=[
                {"epoch": 1, "app_id": "a", "kind": "deletion", "detail": ""},
            ]),
        ])
        with AnalyticsStore(tmp_path / "s.sqlite") as store:
            ingest_service_report(
                store, report.snapshot(), label="serve", incidents=incidents
            )
            ingest_monitor_history(store, tmp_path / "mon")
            text = render_report(store)
            for heading in (
                "== store census ==",
                "== SLO burn-down",
                "== degradation-rung mix",
                "== model-version served/rung mix ==",
                "== rollout incidents ==",
                "== AppNet evolution (per monitoring epoch) ==",
                "== campaign timeline (forensic events) ==",
            ):
                assert heading in text
            assert f"schema_version: {SCHEMA_VERSION}" in text
