"""The adversarial-drift ecosystem: identity at drift 0, change above.

The contract every drifting campaign honours (see
``repro.ecosystem.campaigns.DriftingCampaign``): at ``drift=0`` the
built population is byte-identical to a plain :class:`HackerCampaign`
on the same RNG stream, and the epoch generator is a pure function of
``(plan.seed, epoch)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecosystem.campaigns import (
    DRIFTING_ARCHETYPES,
    CampaignPlan,
    HackerCampaign,
)
from repro.ecosystem.drift import DriftPlan, EpochGenerator
from repro.ecosystem.params import GenerationParams
from repro.rng import RngRegistry, derive_seed

PLAN = DriftPlan(seed=99, n_epochs=4, drift_rate=0.5, apps_per_epoch=60)


def build_campaign(cls, drift=None, seed=1234, n_apps=14):
    """One campaign in its own tiny world; returns its built apps."""
    rngs = RngRegistry(seed)
    services = EpochGenerator(PLAN)._build_services(rngs)
    plan = CampaignPlan(
        campaign_id="c-test", n_apps=n_apps, colluding=True, n_sites=1
    )
    kwargs = {} if drift is None else {"drift": drift}
    campaign = cls(
        plan,
        services,
        GenerationParams(),
        rngs.stream("campaign"),
        scale=0.02,
        crawl_months=3,
        **kwargs,
    )
    campaign.build()
    return campaign


def app_image(campaign):
    return [
        (
            app.app_id,
            app.name,
            app.description,
            app.company,
            app.category,
            app.permissions,
            app.redirect_uri,
            app.client_id_pool,
            app.truth_malicious,
            len(app.profile_feed),
        )
        for app in campaign.apps
    ]


@pytest.mark.parametrize("archetype", sorted(DRIFTING_ARCHETYPES))
def test_drift_zero_is_byte_identical_to_the_base_campaign(archetype):
    """drift=0 consumes the exact RNG sequence of a plain campaign."""
    cls = DRIFTING_ARCHETYPES[archetype]
    base = build_campaign(HackerCampaign)
    drifting = build_campaign(cls, drift=0.0)
    assert app_image(drifting) == app_image(base)
    assert drifting.loud_app_ids == base.loud_app_ids
    np.testing.assert_array_equal(
        drifting.post_weights(), base.post_weights()
    )


@pytest.mark.parametrize("archetype", sorted(DRIFTING_ARCHETYPES))
def test_full_drift_changes_the_population(archetype):
    """Something observable moves at drift=1 — app fields for the
    identity-rotating archetypes, posting behaviour for the like farm
    (whose adaptation is going quiet, not changing registrations)."""
    cls = DRIFTING_ARCHETYPES[archetype]
    undrifted = build_campaign(cls, drift=0.0)
    drifted = build_campaign(cls, drift=1.0)
    behaviour = lambda c: (  # noqa: E731
        app_image(c), sorted(c.loud_app_ids), c.post_weights().tolist()
    )
    assert behaviour(drifted) != behaviour(undrifted)


def test_drift_clamps_to_unit_interval():
    campaign = build_campaign(
        DRIFTING_ARCHETYPES["mimicry"], drift=7.5
    )
    assert campaign.drift == 1.0


def test_full_mimicry_adopts_the_benign_playbook():
    campaign = build_campaign(DRIFTING_ARCHETYPES["mimicry"], drift=1.0)
    ordinary = [
        app
        for app in campaign.apps
        if app.app_id not in campaign.professional_app_ids
    ]
    assert ordinary
    assert all(app.category == "Games" for app in ordinary)
    assert all(app.description and app.company for app in ordinary)
    assert all(app.profile_feed for app in ordinary)


def test_full_profile_ring_drops_the_forensic_tells():
    campaign = build_campaign(
        DRIFTING_ARCHETYPES["profile_ring"], drift=1.0
    )
    assert all(not app.client_id_pool for app in campaign.apps)


def test_full_like_farm_goes_quiet():
    loud = build_campaign(DRIFTING_ARCHETYPES["like_farm"], drift=0.0)
    quiet = build_campaign(DRIFTING_ARCHETYPES["like_farm"], drift=1.0)
    assert not quiet.loud_app_ids
    assert quiet.post_weights().sum() < loud.post_weights().sum()


# -- the epoch generator -------------------------------------------------


def epoch_image(epoch_data):
    return (
        [repr(record.__dict__) for record in epoch_data.records],
        epoch_data.labels.tolist(),
        epoch_data.labeled_mask.tolist(),
    )


def test_epochs_are_pure_functions_of_seed_and_index():
    generator = EpochGenerator(PLAN)
    again = EpochGenerator(DriftPlan(**{**PLAN.__dict__}))
    assert epoch_image(generator.epoch(2)) == epoch_image(again.epoch(2))


def test_epoch_zero_is_drift_free_at_every_rate():
    """intensity(0) == 0, so epoch 0 never depends on the drift rate."""
    fast = DriftPlan(seed=PLAN.seed, n_epochs=4, drift_rate=1.0,
                     apps_per_epoch=PLAN.apps_per_epoch)
    assert PLAN.intensity(0) == 0.0 == fast.intensity(0)
    assert epoch_image(EpochGenerator(PLAN).epoch(0)) == epoch_image(
        EpochGenerator(fast).epoch(0)
    )


def test_epoch_intensity_schedule():
    plan = DriftPlan(drift_rate=0.4)
    assert plan.intensity(1) == pytest.approx(0.4)
    assert plan.intensity(2) == pytest.approx(0.8)
    assert plan.intensity(5) == 1.0  # saturates
    assert plan.day_of(3) == 3 * plan.epoch_days


def test_epoch_cohort_shape_and_labels():
    epoch = EpochGenerator(PLAN).epoch(1)
    assert epoch.n_apps >= PLAN.apps_per_epoch * 0.9
    assert len(epoch.labels) == epoch.n_apps
    assert 0 < epoch.labels.sum() < epoch.n_apps  # both classes present
    records, labels = epoch.labeled()
    assert len(records) == int(epoch.labeled_mask.sum()) == len(labels)
    # Records synthesised outside the crawler are authoritative.
    assert all(record.summary_ok for record in epoch.records)


def test_derive_seed_keys_epochs_independently():
    assert derive_seed(PLAN.seed, "drift-epoch-0001") != derive_seed(
        PLAN.seed, "drift-epoch-0002"
    )
