"""Tests for the piggybacking operation and its downstream signature."""




class TestPiggybackInWorld:
    def test_targets_are_popular_benign_apps(self, world):
        targets = world.piggybacked_ids()
        assert targets
        for app_id in targets:
            assert not world.registry.get(app_id).truth_malicious

    def test_forged_volume_is_a_minority(self, world):
        log = world.post_log
        for app_id in world.piggybacked_ids():
            posts = log.posts_of_app(app_id)
            forged = sum(1 for p in posts if p.truth_piggybacked)
            assert 0 < forged < 0.35 * len(posts)

    def test_forged_posts_carry_lure_links(self, world):
        for post in world.post_log:
            if post.truth_piggybacked:
                assert post.truth_malicious
                assert post.link is not None

    def test_monitor_sees_low_malicious_ratio(self, pipeline_result):
        """Fig 16: piggybacked apps have ratio < 0.2 yet > 0."""
        report = pipeline_result.monitor_report
        low_ratio = 0
        for app_id in pipeline_result.world.piggybacked_ids():
            ratio = report.malicious_post_ratio(app_id)
            if 0 < ratio < 0.35:
                low_ratio += 1
        assert low_ratio >= 0.6 * len(pipeline_result.world.piggybacked_ids())

    def test_whitelist_keeps_targets_out_of_training(self, pipeline_result):
        bundle = pipeline_result.bundle
        targets = pipeline_result.world.piggybacked_ids()
        assert not (targets & bundle.d_sample_malicious)
