"""Micro-benchmarks for the computational kernels of the pipeline.

These time the hot paths with multiple rounds (unlike the experiment
benchmarks, which run heavy analyses once).
"""

import numpy as np

from repro.collusion.appnets import CollusionAnalyzer
from repro.core.frappe import frappe
from repro.ml.svm import SVC
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper
from repro.text.clustering import cluster_names
from repro.text.editdist import damerau_levenshtein


def test_perf_svm_training(benchmark, result):
    records, labels = result.complete_records()
    x = result.extractor.matrix(records)
    y = np.asarray(labels)

    def train():
        return SVC().fit(x, y)

    model = benchmark(train)
    assert model.n_support_ > 0


def test_perf_feature_extraction(benchmark, result):
    records, _ = result.sample_records()

    def extract():
        return result.extractor.matrix(records)

    matrix = benchmark(extract)
    assert matrix.shape[0] == len(records)


def test_perf_prediction_throughput(benchmark, result):
    records, labels = result.sample_records()
    classifier = frappe(result.extractor).fit(records, labels)

    def predict():
        return classifier.predict(records)

    predictions = benchmark(predict)
    assert len(predictions) == len(records)


def test_perf_edit_distance(benchmark):
    pairs = [
        ("What Does Your Name Mean?", "What ur name implies!!!"),
        ("Profile Watchers v4.32", "Profile Watchers v8"),
        ("FarmVille", "FarmVile"),
    ] * 30

    def distances():
        return [damerau_levenshtein(a, b) for a, b in pairs]

    values = benchmark(distances)
    assert all(v >= 0 for v in values)


def test_perf_name_clustering(benchmark, result):
    from repro.experiments.fig10 import sample_names

    names = sample_names(result)["malicious"]

    def cluster():
        return cluster_names(names, 0.8)

    clustering = benchmark.pedantic(cluster, rounds=2, iterations=1)
    assert clustering.n_clusters >= 1


def test_perf_name_clustering_at_scale(benchmark):
    """The fast kernel on a 10K-name skewed corpus (the paper's regime).

    The naive kernel needs minutes here (that comparison lives in
    ``repro bench --full``); this benchmark tracks the fast kernel's
    absolute wall time so a pruning regression shows up in CI history.
    """
    from repro.bench import _clustering_corpus

    names = _clustering_corpus(10_000, seed=2012)

    def cluster():
        return cluster_names(names, 0.8, kernel="fast")

    clustering = benchmark.pedantic(cluster, rounds=2, iterations=1)
    assert clustering.n_clusters >= 1


def test_perf_batched_service_throughput(benchmark, result):
    from repro.config import ServiceConfig
    from repro.service import LoadProfile, generate_requests, make_service

    app_ids = sorted(result.bundle.d_sample)
    profile = LoadProfile(
        n_requests=150, rate_rps=0.5, pool_size=25, seed=2012
    )
    requests = generate_requests(app_ids, profile)

    def serve():
        # serving consumes the shared world's installer RNG; restore it
        # so every round (and every later benchmark) sees the same state
        state = result.world.installer.rng_state()
        try:
            service = make_service(result, ServiceConfig(batch_size=8))
            return service.serve(list(requests))
        finally:
            result.world.installer.restore_rng_state(state)

    report = benchmark.pedantic(serve, rounds=2, iterations=1)
    assert len(report.responses) == 150
    assert max(r.batch_size for r in report.responses) > 1


def test_perf_mypagekeeper_scan(benchmark, result):
    classifier = UrlClassifier(result.world.services.blacklist)
    monitor = MyPageKeeper(classifier, result.world.post_log)
    report = benchmark.pedantic(monitor.scan, rounds=1, iterations=1)
    assert report.posts_scanned == len(result.world.post_log)


def test_perf_collusion_discovery(benchmark, result):
    analyzer = CollusionAnalyzer(result.world, probe_visits=2000)
    collusion = benchmark.pedantic(analyzer.discover, rounds=1, iterations=1)
    assert len(collusion.graph) > 0
