"""Ablation — what the popular-app whitelist buys (Sec 2.3).

Without the whitelist, piggybacked popular apps (FarmVille & co.) are
mislabelled malicious and pollute the training sample.
"""

from repro.crawler.datasets import DatasetBuilder


def test_ablation_whitelist(benchmark, result):
    def build_without_whitelist():
        builder = DatasetBuilder(
            result.world, result.monitor_report, whitelist_top_fraction=0.0
        )
        return builder.build(crawl=False)

    bundle = benchmark.pedantic(build_without_whitelist, rounds=1, iterations=1)
    piggybacked = result.world.piggybacked_ids()
    polluted = piggybacked & bundle.d_sample_malicious
    rescued = piggybacked & result.bundle.whitelist
    print()
    print(f"  without whitelist: {len(polluted)}/{len(piggybacked)} popular "
          f"apps mislabelled malicious")
    print(f"  with whitelist:    {len(rescued)}/{len(piggybacked)} rescued")
    assert len(polluted) >= 0.7 * len(piggybacked)
    assert not (piggybacked & result.bundle.d_sample_malicious)
