"""Fig 6 — top permissions per class."""

from benchmarks.conftest import percent
from repro.experiments import fig06


def test_fig06_top_permissions(run_experiment, result):
    report = run_experiment(fig06.run, result)
    measured = report.measured_by_metric()
    # publish_stream dominates malicious apps...
    assert percent(measured["malicious requesting publish_stream"]) > 90
    # ...and every other permission is rare for them
    for perm in ("offline_access", "user_birthday", "email", "publish_actions"):
        assert percent(measured[f"malicious requesting {perm}"]) < 15
        # while benign apps request it much more often
        assert percent(measured[f"benign requesting {perm}"]) > (
            percent(measured[f"malicious requesting {perm}"])
        )
