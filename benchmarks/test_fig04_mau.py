"""Fig 4 — monthly active users of malicious apps."""

from benchmarks.conftest import percent
from repro.experiments import fig04


def test_fig04_mau(run_experiment, result):
    report = run_experiment(fig04.run, result)
    measured = report.measured_by_metric()
    median_over = percent(measured["median MAU >= 1000 (scaled)"])
    max_over = percent(measured["max MAU >= 1000 (scaled)"])
    assert 25 < median_over < 55  # paper: 40%
    assert max_over > median_over  # maxima dominate medians
