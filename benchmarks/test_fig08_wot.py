"""Fig 8 — WOT reputation of redirect domains."""

from benchmarks.conftest import percent
from repro.experiments import fig08


def test_fig08_wot(run_experiment, result):
    report = run_experiment(fig08.run, result)
    measured = report.measured_by_metric()
    assert percent(measured["malicious with no WOT score"]) > 60  # paper: 80%
    assert percent(measured["malicious scoring < 5"]) > 85  # paper: 95%
    assert percent(measured["benign scoring >= 60"]) > 70
