"""Chaos benchmark: what a fault rate costs the study (time and quality).

Sweeps the per-request fault rate 0% -> 30% and, for each, runs the full
measurement chain through the fault-injecting transport, printing

* the injected-fault mix and total request count,
* the recovery rate (transiently faulted collections that still reached
  a definitive result),
* retry effort (mean attempts per collection) and the simulated crawl
  clock (service + backoff waiting) in hours,
* FRAppE accuracy on D-Sample under the degradation cascade.

Run with ``pytest benchmarks/test_perf_crawl_faults.py --benchmark-only -s``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crawler.crawler import outcome_tallies, recovery_rate
from repro.experiments import common

#: Chaos runs need a fresh crawl per rate; keep the sweep affordable.
FAULT_SCALE = 0.04
FAULT_SEED = 2012
RATES = (0.0, 0.1, 0.2, 0.3)

_accuracies: dict[float, float] = {}


def _accuracy(result) -> float:
    records, labels = result.sample_records()
    model = result.cascade or result.classifier
    return float(np.mean(model.predict(records) == np.asarray(labels)))


def _report(rate: float, result) -> str:
    stats = result.transport_stats
    records = result.bundle.records
    recovery = recovery_rate(records)
    tallies = outcome_tallies(records)
    attempts = [
        outcome.attempts
        for record in records.values()
        for outcome in record.outcomes.values()
        if outcome.attempts > 0
    ]
    lines = [
        f"fault rate        {rate:.0%}",
        f"requests          {stats.requests}",
        f"injected faults   {stats.fault_count()} "
        + str(dict(sorted(stats.injected.items()))),
        f"truncated feeds   {stats.truncated_feeds}",
        f"vanished apps     {len(stats.vanished)}",
        "recovery rate     "
        + ("n/a (no faults)" if recovery is None else f"{recovery:.1%}"),
        f"mean attempts     {np.mean(attempts):.2f}" if attempts else "",
        f"simulated crawl   {stats.elapsed_s / 3600:.1f} h "
        f"(waiting {stats.wait_s / 3600:.1f} h)",
        f"D-Sample accuracy {_accuracy(result):.1%}",
        "outcome tallies   "
        + "; ".join(
            f"{c}: {dict(sorted(t.items()))}" for c, t in tallies.items()
        ),
    ]
    return "\n".join(line for line in lines if line)


@pytest.mark.parametrize("rate", RATES)
def test_perf_crawl_fault_sweep(benchmark, rate):
    def run():
        return common.get_result(
            scale=FAULT_SCALE, seed=FAULT_SEED, sweep=False, fault_rate=rate
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(_report(rate, result))

    _accuracies[rate] = _accuracy(result)
    stats = result.transport_stats
    if rate == 0.0:
        assert stats.fault_count() == 0
        assert result.cascade is None
    else:
        assert stats.fault_count() > 0
        recovery = recovery_rate(result.bundle.records)
        assert recovery is not None and recovery >= 0.95
        # Quality holds as the network degrades: accuracy within one
        # point of the fault-free study at every swept rate.
        if 0.0 in _accuracies:
            assert _accuracies[0.0] - _accuracies[rate] <= 0.01 + 1e-9
