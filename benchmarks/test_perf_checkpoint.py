"""Checkpoint benchmark: what crash-safety costs the crawl.

Crawls the same D-Sample three ways — no journal, a write-ahead journal
(fsync per app), and a journal with aggressive snapshot compaction —
and prints the wall-clock overhead of each durability level.  The
records must be byte-identical across all three: the journal is pure
bookkeeping, never allowed to perturb the study.

Run with ``pytest benchmarks/test_perf_checkpoint.py --benchmark-only -s``.
"""

from __future__ import annotations

import itertools
import json
import time

import pytest

from repro.config import ScaleConfig
from repro.crawler.checkpoint import CrawlJournal, record_to_jsonable
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper

CKPT_SCALE = 0.04
CKPT_SEED = 2012
CKPT_FAULT_RATE = 0.2

#: variant -> snapshot_every (None = no journal at all)
VARIANTS = {
    "no-journal": None,
    "journal": 1_000_000,  # never compacts inside the run
    "journal-compacting": 16,
}

_world_cache: dict = {}
_canons: dict[str, bytes] = {}
_durations: dict[str, float] = {}
_dir_counter = itertools.count()


def _world_and_sample():
    if not _world_cache:
        world = run_simulation(
            ScaleConfig(
                scale=CKPT_SCALE,
                master_seed=CKPT_SEED,
                fault_rate=CKPT_FAULT_RATE,
            )
        )
        report = MyPageKeeper(
            UrlClassifier(world.services.blacklist), world.post_log
        ).scan()
        bundle = DatasetBuilder(world, report).build(crawl=False)
        _world_cache["world"] = world
        _world_cache["sample"] = sorted(bundle.d_sample)
        _world_cache["rng_state"] = world.installer.rng_state()
    return _world_cache["world"], _world_cache["sample"]


def _canon(records) -> bytes:
    return json.dumps(
        {a: record_to_jsonable(r) for a, r in sorted(records.items())},
        sort_keys=True,
    ).encode()


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_perf_checkpoint_overhead(benchmark, tmp_path, variant):
    world, apps = _world_and_sample()
    snapshot_every = VARIANTS[variant]

    def run():
        world.installer.restore_rng_state(_world_cache["rng_state"])
        journal = None
        if snapshot_every is not None:
            directory = tmp_path / f"ck{next(_dir_counter)}"
            journal = CrawlJournal(directory, snapshot_every=snapshot_every)
        started = time.perf_counter()
        try:
            records = make_crawler(world).crawl_many(apps, journal=journal)
        finally:
            if journal is not None:
                journal.close()
        _durations[variant] = time.perf_counter() - started
        return records

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    _canons[variant] = _canon(records)

    print()
    print(f"variant           {variant}")
    print(f"apps crawled      {len(records)}")
    print(f"crawl wall time   {_durations[variant] * 1000:.0f} ms")
    if variant != "no-journal" and "no-journal" in _durations:
        base = _durations["no-journal"]
        overhead = _durations[variant] / base - 1.0 if base > 0 else 0.0
        print(f"journal overhead  {overhead:+.1%} vs no-journal")
        # Identical records: durability is bookkeeping, not behaviour.
        assert _canons[variant] == _canons["no-journal"]
