"""Fig 14 — local clustering coefficient distribution."""

from benchmarks.conftest import percent
from repro.experiments import fig14


def test_fig14_clustering_coeff(run_experiment, result, collusion):
    report = run_experiment(fig14.run, result, collusion)
    measured = report.measured_by_metric()
    over = percent(measured["apps with coefficient > 0.74"])
    assert 8 < over < 45  # paper: 25%
    assert percent(measured["apps with coefficient > 0"]) > 40
