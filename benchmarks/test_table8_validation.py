"""Table 8 — validating FRAppE's new flags."""

from benchmarks.conftest import percent
from repro.experiments import table8


def test_table8_validation(run_experiment, result):
    report = run_experiment(table8.run, result)
    measured = report.measured_by_metric()
    assert percent(measured["total validated"]) > 85  # paper: 98.5%
    assert percent(measured["flag precision vs hidden truth"]) > 85
    # deletion by Facebook is the dominant validator (paper: 81%)
    deleted = measured["deleted_from_graph"]
    fraction = float(deleted.split("(")[1].rstrip(")%"))
    assert fraction > 60
