"""Fig 7 — number of permissions requested."""

from benchmarks.conftest import percent
from repro.experiments import fig07


def test_fig07_permission_count(run_experiment, result):
    report = run_experiment(fig07.run, result)
    measured = report.measured_by_metric()
    malicious_single = percent(measured["malicious requesting exactly 1"])
    benign_single = percent(measured["benign requesting exactly 1"])
    assert malicious_single > 90  # paper: 97%
    assert 50 < benign_single < 75  # paper: 62%
