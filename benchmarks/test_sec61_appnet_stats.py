"""Sec 6.1 — AppNet statistics."""

from benchmarks.conftest import percent
from repro.experiments import sec61


def test_sec61_appnet_stats(run_experiment, result, collusion):
    report = run_experiment(sec61.run, result, collusion)
    measured = report.measured_by_metric()
    assert int(measured["connected components"]) >= 5
    assert percent(measured["apps colluding with > 10 others"]) > 25
    bitly = percent(measured["site links shortened via bit.ly"])
    assert bitly > 60  # paper: ~80% via bit.ly
    aws = percent(measured["indirection sites hosted on AWS"])
    assert 15 < aws < 60  # paper: one third
