"""Ablation — resilience to ground-truth label noise.

Sec 5.3 bounds the training labels' false-positive rate at 2.6%; this
ablation injects increasing symmetric label noise and verifies the
operating point degrades gracefully.
"""

import numpy as np

from repro.core.frappe import frappe


def test_ablation_label_noise(benchmark, result):
    records, labels = result.complete_records()
    labels = np.asarray(labels)

    def sweep():
        out = {}
        for noise in (0.0, 0.026, 0.10):
            rng = np.random.default_rng(62)
            noisy = labels.copy()
            flips = rng.random(len(noisy)) < noise
            noisy[flips] = 1 - noisy[flips]
            out[noise] = frappe(result.extractor).cross_validate(
                records, noisy, rng=np.random.default_rng(63)
            )
        return out

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for noise, report in reports.items():
        print(f"  noise={noise:.1%}: {report}")
    # At the paper's 2.6% bound, accuracy stays within a few points.
    assert reports[0.026].accuracy > reports[0.0].accuracy - 0.05
    assert reports[0.0].accuracy >= reports[0.10].accuracy - 0.01
