"""Sec 5.2 — FRAppE with aggregation features (the headline result)."""

from repro.experiments import sec52


def test_sec52_frappe_full(run_experiment, result):
    report = run_experiment(sec52.run, result)
    for metric, _paper, measured in report.rows:
        if metric.startswith("FRAppE"):
            acc = float(measured.split("acc=")[1].split("%")[0])
            fp = float(measured.split("FP=")[1].split("%")[0])
            fn = float(measured.split("FN=")[1].split("%")[0])
            assert acc > 97.5, metric  # paper: 99.0 / 99.5
            assert fp < 2.0, metric  # paper: 0.1 / 0.0
            assert fn < 10.0, metric  # paper: 4.4 / 4.1
