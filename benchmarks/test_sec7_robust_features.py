"""Sec 7 — the obfuscation-robust feature subset."""

from repro.experiments import sec7


def test_sec7_robust_features(run_experiment, result):
    report = run_experiment(sec7.run, result)
    measured = report.measured_by_metric()["robust-features CV"]
    acc = float(measured.split("acc=")[1].split("%")[0])
    assert acc > 95  # paper: 98.2%
