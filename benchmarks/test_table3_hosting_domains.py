"""Table 3 — domains hosting malicious apps (top-5 concentration)."""

from benchmarks.conftest import percent
from repro.experiments import table3


def test_table3_hosting_domains(run_experiment, result):
    report = run_experiment(table3.run, result)
    coverage = percent(report.measured_by_metric()["top-5 domain coverage"])
    # Paper: 83%.  Shape: a handful of domains dominate.
    assert coverage > 60
