"""Regenerate the committed perf baselines.

Thin wrapper over ``repro bench`` (:mod:`repro.bench`) so the baseline
workflow lives next to the pytest-benchmark suites:

    PYTHONPATH=src python benchmarks/baseline.py            # BENCH_baseline.json (quick)
    PYTHONPATH=src python benchmarks/baseline.py --full     # BENCH_4.json (acceptance scale)

``BENCH_baseline.json`` is what CI compares against (quick mode, gated
on machine-independent fast/naive speedup ratios).  ``BENCH_4.json``
records the acceptance-scale numbers (10K-name clustering, 100K-row
feature matrices) and is regenerated only when an optimisation lands.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import main as bench_main


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="acceptance-scale workloads")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--out", default=None,
                        help="output path (default depends on --full)")
    parser.add_argument("--compare", default=None,
                        help="baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = "BENCH_4.json" if args.full else "BENCH_baseline.json"
    return args


if __name__ == "__main__":
    sys.exit(bench_main(parse_args()))
