"""Fig 12 — external-link-to-post ratio."""

from benchmarks.conftest import percent
from repro.experiments import fig12


def test_fig12_external_links(run_experiment, result):
    report = run_experiment(fig12.run, result)
    measured = report.measured_by_metric()
    assert percent(measured["benign posting no external links"]) > 70
    high = percent(measured["malicious with ratio >= 0.8"])
    assert 25 < high < 60  # paper: 40%
