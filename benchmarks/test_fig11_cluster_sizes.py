"""Fig 11 — identical-name cluster sizes."""

from benchmarks.conftest import percent
from repro.experiments import fig11


def test_fig11_cluster_sizes(run_experiment, result):
    report = run_experiment(fig11.run, result)
    measured = report.measured_by_metric()
    # the 'The App' giant cluster holds ~10% of malicious apps
    largest = percent(measured["largest cluster / malicious apps ('The App')"])
    assert 5 < largest < 25
    mean = float(measured["mean apps per malicious name"])
    assert mean > 2.5  # paper: 5 apps per name on average
    assert percent(measured["benign clusters with > 2 apps"]) < 5
