"""Fig 16 — malicious-posts-to-all-posts ratio."""

from benchmarks.conftest import percent
from repro.experiments import fig16


def test_fig16_piggyback_ratio(run_experiment, result):
    report = run_experiment(fig16.run, result)
    measured = report.measured_by_metric()
    low = percent(measured["apps with ratio < 0.2 (piggybacked)"])
    high = percent(measured["apps with ratio > 0.8 (outright malicious)"])
    assert low < 20  # paper: ~5% — piggybacked apps are a small tail
    assert high > 60  # most flagged apps are outright malicious
