"""Service benchmark: throughput and latency vs fault rate, under overload.

Sweeps the injected fault rate 0% -> 30% while offering the verdict
service the *same* open-loop workload at a fixed multiple of its
estimated cold-crawl capacity, and prints per rate

* the typed-outcome mix (served / overloaded / deadline),
* the degradation-ladder mix of served verdicts,
* served throughput on the simulated clock and p50/p95/p99 latency,
* shed rates per priority (the policy: bulk before interactive),
* cache effectiveness (fresh / stale hits, background refreshes).

When ``REPRO_SERVICE_PERF_DIR`` is set, the sweep is also written there
as ``service_sweep.json`` so CI can upload it as an artifact and runs
can be compared over time.

Run with ``pytest benchmarks/test_perf_service.py --benchmark-only -s``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.service import (
    BULK,
    DEADLINE,
    INTERACTIVE,
    OVERLOADED,
    SERVED,
    LoadProfile,
    estimate_capacity_rps,
    generate_requests,
    make_service,
)

SERVICE_SCALE = 0.02
SERVICE_SEED = 2012
RATES = (0.0, 0.1, 0.2, 0.3)
N_REQUESTS = 200
OVERLOAD_FACTOR = 2.0
QUEUE_DEPTH = 12

_sweep: dict[float, dict] = {}


def _serve(rate: float):
    result = FrappePipeline(
        ScaleConfig(scale=SERVICE_SCALE, master_seed=SERVICE_SEED, fault_rate=rate)
    ).run(sweep_unlabelled=False)
    service = make_service(
        result, ServiceConfig(max_queue_depth=QUEUE_DEPTH)
    )
    capacity = estimate_capacity_rps(result.world.schedule)
    profile = LoadProfile(
        n_requests=N_REQUESTS,
        rate_rps=capacity * OVERLOAD_FACTOR,
        pool_size=24,
        seed=SERVICE_SEED,
    )
    requests = generate_requests(sorted(result.bundle.d_sample), profile)
    return service.serve(requests)


def _row(rate: float, report) -> dict:
    outcomes = report.outcome_counts()
    return {
        "fault_rate": rate,
        "requests": len(report.responses),
        "served": outcomes.get(SERVED, 0),
        "overloaded": outcomes.get(OVERLOADED, 0),
        "deadline": outcomes.get(DEADLINE, 0),
        "rungs": dict(sorted(report.rung_counts().items())),
        "shed_rate_interactive": report.shed_rate(INTERACTIVE),
        "shed_rate_bulk": report.shed_rate(BULK),
        "max_queue_depth": report.max_queue_depth,
        "queue_bound": report.queue_bound,
        "cache_hits_fresh": report.cache_hits_fresh,
        "cache_hits_stale": report.cache_hits_stale,
        "refreshes_done": report.refreshes_done,
        "refreshes_shed": report.refreshes_shed,
        "latency_p50_s": report.latency_percentile(50),
        "latency_p95_s": report.latency_percentile(95),
        "latency_p99_s": report.latency_percentile(99),
        "throughput_served_per_h": report.throughput_rps() * 3600,
        "simulated_elapsed_s": report.elapsed_s,
        "injected_faults": sum(report.transport["injected"].values()),
    }


def _render(row: dict) -> str:
    return "\n".join(
        [
            f"fault rate        {row['fault_rate']:.0%}",
            f"outcomes          served={row['served']} "
            f"overloaded={row['overloaded']} deadline={row['deadline']}",
            f"rungs             {row['rungs']}",
            f"shed rates        interactive={row['shed_rate_interactive']:.1%} "
            f"bulk={row['shed_rate_bulk']:.1%}",
            f"queue             depth<= {row['max_queue_depth']}"
            f"/{row['queue_bound']}",
            f"cache             fresh={row['cache_hits_fresh']} "
            f"stale={row['cache_hits_stale']} "
            f"refreshes={row['refreshes_done']} "
            f"(shed {row['refreshes_shed']})",
            f"latency (sim)     p50={row['latency_p50_s']:.1f}s "
            f"p95={row['latency_p95_s']:.1f}s p99={row['latency_p99_s']:.1f}s",
            f"throughput        {row['throughput_served_per_h']:.0f} served/h "
            f"over {row['simulated_elapsed_s'] / 3600:.1f} simulated h",
            f"injected faults   {row['injected_faults']}",
        ]
    )


def _write_artifact() -> None:
    directory = os.environ.get("REPRO_SERVICE_PERF_DIR")
    if not directory:
        return
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    rows = [_sweep[rate] for rate in sorted(_sweep)]
    (path / "service_sweep.json").write_text(
        json.dumps(
            {
                "scale": SERVICE_SCALE,
                "seed": SERVICE_SEED,
                "n_requests": N_REQUESTS,
                "overload_factor": OVERLOAD_FACTOR,
                "queue_depth": QUEUE_DEPTH,
                "sweep": rows,
            },
            indent=2,
        )
        + "\n"
    )


@pytest.mark.parametrize("rate", RATES)
def test_perf_service_fault_sweep(benchmark, rate):
    report = benchmark.pedantic(_serve, args=(rate,), rounds=1, iterations=1)
    row = _row(rate, report)
    _sweep[rate] = row
    print()
    print(_render(row))

    # The overload contract holds at every fault rate.
    assert row["requests"] == N_REQUESTS
    assert row["served"] + row["overloaded"] + row["deadline"] == N_REQUESTS
    assert row["max_queue_depth"] <= QUEUE_DEPTH
    if row["shed_rate_bulk"] > 0.0:
        assert row["shed_rate_bulk"] >= row["shed_rate_interactive"]
    if rate == 0.0:
        # The cache absorbs the repeats: a fault-free service keeps up
        # with 2x the cold-crawl estimate without shedding a thing.
        assert row["injected_faults"] == 0
    else:
        assert row["injected_faults"] > 0
        assert row["overloaded"] > 0  # 2x capacity plus faults must shed
    if rate == RATES[-1]:
        _write_artifact()
