"""Sec 3 — prevalence of malicious apps."""

from benchmarks.conftest import percent
from repro.experiments import sec3


def test_sec3_prevalence(run_experiment, result):
    report = run_experiment(sec3.run, result)
    measured = report.measured_by_metric()
    fraction = percent(measured["malicious fraction of observed apps"])
    assert 9 < fraction < 17  # paper: "at least 13%"
    by_apps = percent(measured["flagged posts made by apps"])
    assert 50 < by_apps < 85  # paper: 73% (= 1 - 27% app-less)
