"""Ablation — kernel choice and soft-margin C (libsvm defaults used
by the paper vs alternatives)."""

import numpy as np

from repro.core.frappe import FrappeClassifier


def test_ablation_kernels(benchmark, result):
    records, labels = result.complete_records()

    def compare():
        out = {}
        for kernel in ("rbf", "linear"):
            for c in (0.1, 1.0, 10.0):
                classifier = FrappeClassifier(
                    result.extractor, c=c, kernel=kernel
                )
                out[(kernel, c)] = classifier.cross_validate(
                    records, labels, rng=np.random.default_rng(61)
                )
        return out

    reports = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    for (kernel, c), report in sorted(reports.items()):
        print(f"  kernel={kernel} C={c}: {report}")
    # The paper's configuration (RBF, C=1) is competitive everywhere.
    paper_config = reports[("rbf", 1.0)]
    best = max(r.accuracy for r in reports.values())
    assert paper_config.accuracy >= best - 0.02
