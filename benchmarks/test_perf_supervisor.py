"""Supervisor benchmark: what process sharding and a dead worker cost.

Crawls the same D-Sample at a 20% transport fault rate three ways —
sequentially, sharded across N processes, and sharded with a SIGKILL
injected into one worker mid-shard — and prints records/s for each
plus the supervisor's recovery accounting.  Every variant must produce
byte-identical records: the process pool and the recovery ladder are
pure mechanism, never allowed to perturb the study.

Wall-clock speedup here measures *real* parallelism of the speculate
phase (simulated transport time is deterministic and identical across
variants); fork/IPC overhead means small samples may not show one, so
only identity is asserted, not speed.

Run with ``pytest benchmarks/test_perf_supervisor.py --benchmark-only -s``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.config import ScaleConfig
from repro.crawler.checkpoint import record_to_jsonable
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.crawler.supervisor import KILL, ShardSupervisor, WorkerChaos
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper

SUP_SCALE = 0.04
SUP_SEED = 2012
SUP_FAULT_RATE = 0.2
PROCESSES = 4

#: variant -> (processes, chaos)
VARIANTS = {
    "sequential": (1, None),
    "sharded": (PROCESSES, None),
    "sharded-kill": (PROCESSES, WorkerChaos(mode=KILL, shard=0, app_index=1)),
}

_world_cache: dict = {}
_canons: dict[str, bytes] = {}
_durations: dict[str, float] = {}


def _world_and_sample():
    if not _world_cache:
        world = run_simulation(
            ScaleConfig(
                scale=SUP_SCALE,
                master_seed=SUP_SEED,
                fault_rate=SUP_FAULT_RATE,
            )
        )
        report = MyPageKeeper(
            UrlClassifier(world.services.blacklist), world.post_log
        ).scan()
        bundle = DatasetBuilder(world, report).build(crawl=False)
        _world_cache["world"] = world
        _world_cache["sample"] = sorted(bundle.d_sample)
        _world_cache["rng_state"] = world.installer.rng_state()
    return _world_cache["world"], _world_cache["sample"]


def _canon(records) -> bytes:
    return json.dumps(
        {a: record_to_jsonable(r) for a, r in sorted(records.items())},
        sort_keys=True,
    ).encode()


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_perf_supervised_crawl(benchmark, variant):
    world, sample = _world_and_sample()
    processes, chaos = VARIANTS[variant]

    def run():
        world.installer.restore_rng_state(_world_cache["rng_state"])
        crawler = make_crawler(world)
        if processes == 1:
            started = time.perf_counter()
            records = crawler.crawl_many(sample)
            supervisor = None
        else:
            supervisor = ShardSupervisor(
                crawler, processes=processes, chaos=chaos
            )
            started = time.perf_counter()
            records = supervisor.crawl(sample)
        return records, supervisor, time.perf_counter() - started

    records, supervisor, duration = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _canons[variant] = _canon(records)
    _durations[variant] = duration

    print()
    print(f"variant           {variant}")
    print(f"apps              {len(sample)} at fault rate {SUP_FAULT_RATE:.0%}")
    print(f"processes         {processes}")
    print(f"throughput        {len(sample) / duration:,.1f} records/s "
          f"({duration:.2f} s)")
    if supervisor is not None:
        print(f"worker deaths     {supervisor.worker_deaths}")
        print(f"restarts          {supervisor.restarts}")
        print(f"committed spec.   {supervisor.committed_speculative}")
        print(f"recrawled inline  {supervisor.recrawled_inline}")
        assert (
            supervisor.committed_speculative + supervisor.recrawled_inline
            == len(sample)
        )
    if chaos is not None:
        assert supervisor.worker_deaths >= 1
        assert supervisor.restarts >= 1
    if "sequential" in _canons:
        assert _canons[variant] == _canons["sequential"]
    if variant == "sharded-kill" and "sequential" in _durations:
        ratio = _durations["sequential"] / max(duration, 1e-9)
        print(f"speedup vs 1p     {ratio:.2f}x "
              "(informational; identity is the contract)")
