"""Drift-machinery benchmarks: detector throughput and warm-start value.

Two numbers matter for running the lifecycle loop inline with serving:

* **detector window evaluation** — PSI/KS over every watched feature
  column must stay cheap enough to run on every filled window, and
* **warm-started retraining** — seeding SMO with the carried dual
  vector should converge in no more iterations than a cold fit on the
  same window (it is the same convex QP from a closer start).

Run with ``pytest benchmarks/test_perf_drift.py --benchmark-only -s``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.drift import DriftConfig, DriftDetector
from repro.ml.online import SlidingWindowTrainer, WindowModel

SEED = 2012
N_FEATURES = 7
WINDOW = 200
N_WINDOWS = 20


def _stream(rng, n, shift=0.0):
    rows = rng.normal(size=(n, N_FEATURES)) + shift
    margins = rng.normal(loc=-0.5 + shift, size=n)
    return rows, margins


def test_perf_detector_window_throughput(benchmark):
    rng = np.random.default_rng(SEED)
    reference_rows, reference_margins = _stream(rng, 2000)
    feature_names = tuple(f"f{i}" for i in range(N_FEATURES))
    rows, margins = _stream(rng, WINDOW * N_WINDOWS, shift=0.3)

    def evaluate():
        detector = DriftDetector(
            reference_rows,
            reference_margins,
            feature_names,
            DriftConfig(window=WINDOW),
        )
        return detector.update(rows, margins, t=1.0)

    reports = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    assert len(reports) == N_WINDOWS
    per_window_s = benchmark.stats.stats.mean / N_WINDOWS
    print()
    print(f"windows evaluated   {N_WINDOWS} x {WINDOW} samples "
          f"x {N_FEATURES} features")
    print(f"per-window cost     {per_window_s * 1e3:.2f} ms")
    # An epoch's worth of windows must be far below one epoch of
    # simulated crawling; 50ms/window is an order of magnitude slack.
    assert per_window_s < 0.05


def test_perf_warm_start_saves_iterations(benchmark):
    rng = np.random.default_rng(SEED)

    def epoch(n=120):
        y = (rng.random(n) < 0.45).astype(int)
        y[0], y[1] = 0, 1
        x = rng.normal(size=(n, N_FEATURES)) + 1.8 * y[:, None]
        return x, y

    trainer = SlidingWindowTrainer(window_epochs=3)
    for _ in range(3):
        trainer.push(*epoch())
    trainer.train()  # establish the carried dual vector
    trainer.push(*epoch())

    def warm_fit():
        return trainer.train()

    warm = benchmark.pedantic(warm_fit, rounds=1, iterations=1)
    assert trainer.last_warm_start
    x, y = trainer.window()
    cold = WindowModel().fit(x, y)
    warm_iters = warm.svm.n_iterations_
    cold_iters = cold.svm.n_iterations_
    print()
    print(f"window              {len(y)} samples")
    print(f"iterations          warm={warm_iters} cold={cold_iters}")
    # The warm seed must not make the solve harder; typically it is
    # strictly cheaper, but SMO's heuristics leave a little slack.
    assert warm_iters <= cold_iters * 1.5
    # And the destination is the same optimum.
    probe = rng.normal(size=(100, N_FEATURES)) + 0.9
    np.testing.assert_allclose(
        warm.decision_function(probe),
        cold.decision_function(probe),
        atol=0.15,
    )
