"""Table 1 — dataset construction."""

from benchmarks.conftest import percent
from repro.experiments import table1


def test_table1_datasets(run_experiment, result):
    report = run_experiment(table1.run, result)
    measured = report.measured_by_metric()
    # Shape: malicious apps vanish from crawls far more than benign.
    assert percent(measured["D-Summary coverage of benign"]) > 85
    assert percent(measured["D-Summary coverage of malicious"]) < 60
    assert percent(measured["D-Inst coverage of benign"]) < 50
    assert percent(measured["D-Inst coverage of malicious"]) < 15
