"""Table 2 — top malicious apps by post count."""

from repro.experiments import table2


def test_table2_top_malicious(run_experiment, result):
    run_experiment(table2.run, result)
    top = table2.top_malicious_apps(result, n=5)
    counts = [count for *_rest, count in top]
    assert counts == sorted(counts, reverse=True)
    # heavy tail: the top app clearly dominates the 5th (the paper's
    # 4.8x gap flattens at reduced post volume; monotone rank + a
    # visible gap is the scale-free part of the shape)
    assert counts[0] >= 1.2 * counts[-1]
