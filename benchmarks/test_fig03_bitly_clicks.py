"""Fig 3 — clicks on bit.ly links posted by malicious apps."""

from benchmarks.conftest import percent
from repro.experiments import fig03


def test_fig03_bitly_clicks(run_experiment, result):
    report = run_experiment(fig03.run, result)
    measured = report.measured_by_metric()
    # Shape: most malicious apps accumulate large click totals, with a
    # heavy 1M+ tail (60% / 20% in the paper, scaled thresholds).
    assert percent(measured["malicious apps with short links"]) > 45
    assert percent(measured["apps with > 100K clicks (scaled)"]) > 35
    over_1m = percent(measured["apps with > 1M clicks (scaled)"])
    assert 5 < over_1m < percent(measured["apps with > 100K clicks (scaled)"])
