"""Figs 1/15 — the AppNet snapshot and an example neighborhood."""

from repro.experiments import fig01_15


def test_fig01_15_appnet_graph(run_experiment, result, collusion):
    report = run_experiment(fig01_15.run, result, collusion)
    example = fig01_15.example_neighborhood(result, collusion)
    assert example is not None
    _app_id, n_neighbors, coefficient, modal = example
    # the example neighborhood is clique-like ('Death Predictor': 0.87)
    assert n_neighbors >= 10
    assert coefficient > 0.6
    assert modal >= 2  # neighbors share names
