"""Fig 13 — promoter / promotee / dual role split."""

from benchmarks.conftest import percent
from repro.experiments import fig13


def test_fig13_roles(run_experiment, result, collusion):
    report = run_experiment(fig13.run, result, collusion)
    measured = report.measured_by_metric()
    promoters = percent(measured["promoters"])
    promotees = percent(measured["promotees"])
    dual = percent(measured["dual role"])
    # paper: 25% / 58.8% / 16.2%
    assert 15 < promoters < 40
    assert promotees > promoters  # promotees dominate
    assert 5 < dual < 30
    assert abs(promoters + promotees + dual - 100) < 1
