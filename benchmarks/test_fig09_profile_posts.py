"""Fig 9 — posts on the app profile page."""

from benchmarks.conftest import percent
from repro.experiments import fig09


def test_fig09_profile_posts(run_experiment, result):
    report = run_experiment(fig09.run, result)
    measured = report.measured_by_metric()
    assert percent(measured["malicious with empty profile"]) > 90  # paper: 97%
    assert percent(measured["benign with empty profile"]) < 20
