"""Table 6 — single-feature classifiers."""

from repro.experiments import table6


def test_table6_single_features(run_experiment, result):
    run_experiment(table6.run, result)
    reports = table6.single_feature_cv(result)
    accuracies = {row: cv.accuracy for row, cv in reports.items()}
    # Shape claims of the paper:
    # description is among the strongest single features...
    assert accuracies["description"] > 0.9
    assert accuracies["profile_posts"] > 0.85
    # ...while category/company/permission-count are weak alone
    assert accuracies["description"] > accuracies["permission_count"]
    assert accuracies["description"] > accuracies["company"]
    # client-ID alone misses many malicious apps (high FN)
    assert reports["client_id"].false_negative_rate > 0.1
