"""Ablation — hackers evolve to evade FRAppE (Sec 7's discussion).

Sec 7 predicts hackers could obfuscate the cheap features (fill in
descriptions/companies/categories, post dummy profile-feed content) but
argues the *robust* features — permission count, client-ID rotation,
redirect reputation, name reuse, external links — are costly to give
up.  This ablation rebuilds the world with evolved hackers and checks:

* FRAppE trained on the old world degrades against evolved apps,
* the robust-feature variant holds up far better (the paper's 98.2%).
"""

import dataclasses

import numpy as np

from repro.config import ScaleConfig
from repro.core.frappe import frappe_lite, frappe_robust
from repro.core.pipeline import FrappePipeline
from repro.ecosystem.params import GenerationParams

_EVOLVED = dict(
    # the cheap obfuscations Sec 7 lists:
    malicious_has_description=0.9,
    malicious_has_company=0.8,
    malicious_has_category=0.9,
    malicious_empty_profile=0.10,
)


def test_ablation_adversarial_evolution(benchmark):
    scale = ScaleConfig(scale=0.04, master_seed=77)

    def run_worlds():
        baseline = FrappePipeline(scale).run(sweep_unlabelled=False)
        evolved_params = dataclasses.replace(GenerationParams(), **_EVOLVED)
        evolved = FrappePipeline(
            ScaleConfig(scale=0.04, master_seed=78), evolved_params
        ).run(sweep_unlabelled=False)
        return baseline, evolved

    baseline, evolved = benchmark.pedantic(run_worlds, rounds=1, iterations=1)

    out = {}
    for label, result in (("baseline", baseline), ("evolved", evolved)):
        records, labels = result.complete_records()
        out[label] = {
            "lite": frappe_lite(result.extractor).cross_validate(
                records, labels, rng=np.random.default_rng(79)
            ),
            "robust": frappe_robust(result.extractor).cross_validate(
                records, labels, rng=np.random.default_rng(79)
            ),
        }
    print()
    for label, reports in out.items():
        for variant, report in reports.items():
            print(f"  {label}/{variant}: {report}")

    # Summary features lose power against evolved hackers; the robust
    # subset keeps working (they cannot cheaply fake WOT scores,
    # client-ID honesty, or single-permission installs).
    assert out["evolved"]["robust"].accuracy > 0.95
    assert (
        out["evolved"]["robust"].false_negative_rate
        <= out["evolved"]["lite"].false_negative_rate + 0.02
    )
