"""Observability overhead gate: tracing must stay cheap where it counts.

The gate targets the **batched-scoring path** — the stage
``VerdictService._handle_batch`` runs per drained tick: one
:meth:`FrappeCascade.score_batch` pass over the tick's live crawl
records, wrapped in a ``score`` profile block with the per-batch
simulated-cost and batch-size hooks.  Instrumentation on this path is
*per batch* by design, so it amortises against real feature-extraction
and kernel work; enabled tracing must stay under 10% there.

Two instrumented layers sit deliberately outside the gate and are
priced separately as a printed diagnostic:

* the per-request ``serve.request`` spans (admission/dispatch cost,
  paid once per request regardless of batching), and
* the crawl layer, which records an event per retry attempt by design
  (the causal-chain contract in ``tests/test_obs_tracer.py``).

Both are honest per-item costs against a simulated transport whose
"work" is microseconds of Python; the end-to-end serve number below
reports them instead of hiding them inside the scoring figure.

Wall-time ratio, best-of-N on interleaved runs, so scheduler noise hits
both sides evenly.  Run with ``pytest benchmarks/test_perf_obs.py -s``.
"""

from __future__ import annotations

import time

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.obs import TracingObserver, get_observer, observation
from repro.service import LoadProfile, generate_requests, make_service

SCALE = 0.04
SEED = 424242
BATCH_SIZE = 8
ROUNDS = 5
MAX_OVERHEAD = 0.10
#: stand-in for ``ServiceConfig.score_cost_s`` in the mirrored stage
SCORE_COST_S = 0.01


def _pipeline():
    # fault_rate > 0 so the pipeline trains the degradation cascade —
    # the same model object the service scores batches through.
    return FrappePipeline(
        ScaleConfig(scale=SCALE, master_seed=SEED, fault_rate=0.2)
    ).run(sweep_unlabelled=False)


def _score_batches(cascade, records, observer):
    """The service's batched-scoring stage, hook for hook.

    Mirrors exactly what ``_handle_batch`` wraps around
    :meth:`FrappeCascade.score_batch` for each tick's live records: the
    ``score`` profile block, the per-batch simulated-cost attribution,
    and the batch-size histogram sample.
    """
    scored = []
    with observation(observer):
        obs = get_observer()
        start = time.perf_counter()
        for base in range(0, len(records), BATCH_SIZE):
            batch = records[base : base + BATCH_SIZE]
            with obs.profile("score"):
                scored = cascade.score_batch(batch)
            if obs.enabled:
                obs.sim_cost("score", SCORE_COST_S)
                obs.observe("serve_batch_live", float(len(batch)))
        elapsed = time.perf_counter() - start
    assert len(scored) > 0
    return elapsed


def _serve_once(result, observer):
    """End-to-end serve with cache misses (crawl + score), for the
    diagnostic: per-request spans plus the crawl layer's per-attempt
    events."""
    service = make_service(
        result, ServiceConfig(batch_size=BATCH_SIZE, max_queue_depth=32)
    )
    profile = LoadProfile(
        n_requests=400, rate_rps=0.5, pool_size=200, seed=SEED
    )
    requests = generate_requests(sorted(result.bundle.d_sample), profile)
    with observation(observer):
        start = time.perf_counter()
        report = service.serve(requests)
        elapsed = time.perf_counter() - start
    assert report.responses
    return elapsed


def test_enabled_tracing_overhead_under_10_percent_on_batched_scoring():
    result = _pipeline()
    records, _labels = result.sample_records()
    cascade = result.cascade
    assert cascade is not None

    # Warm both paths once (imports, allocator, cache lines).
    _score_batches(cascade, records, None)
    _score_batches(cascade, records, TracingObserver())

    disabled = enabled = float("inf")
    for _ in range(ROUNDS):
        disabled = min(disabled, _score_batches(cascade, records, None))
        enabled = min(
            enabled, _score_batches(cascade, records, TracingObserver())
        )
    overhead = enabled / disabled - 1.0
    print(
        f"\nbatched scoring ({len(records)} records, "
        f"batch_size={BATCH_SIZE}): off={disabled * 1000:.1f}ms "
        f"on={enabled * 1000:.1f}ms overhead={overhead:+.1%} "
        f"(gate {MAX_OVERHEAD:.0%})"
    )

    # Diagnostic only: the full serve path adds per-request spans and
    # the crawl layer's deliberate per-retry-attempt events.
    serve_off = serve_on = float("inf")
    for _ in range(2):
        serve_off = min(serve_off, _serve_once(result, None))
        serve_on = min(serve_on, _serve_once(result, TracingObserver()))
    print(
        f"end-to-end serve incl. crawl (diagnostic): "
        f"off={serve_off * 1000:.1f}ms on={serve_on * 1000:.1f}ms "
        f"overhead={serve_on / serve_off - 1.0:+.1%}"
    )

    assert overhead < MAX_OVERHEAD, (
        f"enabled tracing costs {overhead:+.1%} on the batched-scoring "
        f"path (budget {MAX_OVERHEAD:.0%})"
    )
