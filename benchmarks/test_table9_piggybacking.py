"""Table 9 — popular apps abused via prompt_feed piggybacking."""

from repro.experiments import table9


def test_table9_piggybacking(run_experiment, result):
    run_experiment(table9.run, result)
    found = table9.piggybacked_apps(result)
    targets = result.world.piggybacked_ids()
    recovered = {app_id for app_id, *_rest in found} & targets
    assert len(recovered) >= 0.7 * len(targets)
    # every detected app has the piggybacking signature
    assert all(ratio < 0.2 for *_rest, ratio in found)
