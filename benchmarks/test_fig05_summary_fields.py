"""Fig 5 — summary-field completeness."""

from benchmarks.conftest import percent
from repro.experiments import fig05


def test_fig05_summary_fields(run_experiment, result):
    report = run_experiment(fig05.run, result)
    measured = report.measured_by_metric()
    for field in ("category", "company", "description"):
        benign = percent(measured[f"benign with {field}"])
        malicious = percent(measured[f"malicious with {field}"])
        assert benign > malicious + 40, field
    assert percent(measured["malicious with description"]) < 10
