"""Ablation — the paper's recommendations to Facebook, rolled out.

Quantifies both Sec 7 countermeasures on the simulated world:

a. blocking app-to-app promotion dismantles every AppNet,
b. authenticating prompt_feed stops piggybacking cold.
"""

from repro.collusion.appnets import CollusionAnalyzer
from repro.core.recommendations import (
    PromptFeedAuthenticator,
    simulate_policy_rollout,
)
from repro.platform.posts import PostLog


def test_ablation_promotion_ban(benchmark, result):
    world = result.world

    report = benchmark.pedantic(
        simulate_policy_rollout, args=(world,), rounds=1, iterations=1
    )
    blocked = set(report.blocked)
    survivors = PostLog()
    for post in world.post_log:
        if post.post_id in blocked:
            continue
        survivors.new_post(
            day=post.day, user_id=post.user_id, app_id=post.app_id,
            app_name=post.app_name, message=post.message, link=post.link,
        )

    class _PolicyWorld:
        post_log = survivors
        services = world.services
        registry = world.registry

    before = CollusionAnalyzer(world, probe_visits=1000).discover()
    after = CollusionAnalyzer(_PolicyWorld(), probe_visits=1000).discover()
    print()
    print(f"  posts blocked by the policy: {report.posts_blocked} "
          f"({report.blocked_fraction:.2%} of the corpus)")
    print(f"  colluding apps before: {len(before.graph)}; after: "
          f"{len(after.graph)}")
    assert len(before.graph) > 50
    assert len(after.graph) == 0  # the AppNet ecosystem is dismantled
    assert report.blocked_fraction < 0.1  # at tolerable collateral cost


def test_ablation_prompt_feed_authentication(benchmark, result):
    world = result.world
    victim = world.popular_apps[0]
    auth = PromptFeedAuthenticator(world.graph_api, world.tokens)

    # The attacker holds tokens only for apps users granted them to.
    attacker_app = world.registry.malicious()[0]
    attacker_token = world.tokens.issue(
        user_id=1, app_id=attacker_app.app_id, scopes=("publish_stream",)
    )

    def attack_attempts():
        rejected = 0
        for _ in range(50):
            try:
                auth.prompt_feed(
                    api_key=victim.app_id,
                    bearer_token=attacker_token.token,
                    user_id=1,
                    message="WOW free credits",
                    link="http://bit.ly/fake",
                    day=100,
                )
            except PermissionError:
                rejected += 1
        return rejected

    rejected = benchmark.pedantic(attack_attempts, rounds=1, iterations=1)
    print()
    print(f"  forged prompt_feed attempts rejected: {rejected}/50")
    assert rejected == 50  # piggybacking is impossible under policy (b)
