"""Ablation — on-demand vs aggregation vs robust feature groups."""

import numpy as np

from repro.core.frappe import FrappeClassifier, frappe, frappe_lite, frappe_robust
from repro.core.features import AGGREGATION_FEATURES


def test_ablation_feature_groups(benchmark, result):
    records, labels = result.complete_records()

    def compare():
        out = {}
        for name, factory in (
            ("lite", frappe_lite),
            ("full", frappe),
            ("robust", frappe_robust),
        ):
            out[name] = factory(result.extractor).cross_validate(
                records, labels, rng=np.random.default_rng(60)
            )
        out["aggregation-only"] = FrappeClassifier(
            result.extractor, features=AGGREGATION_FEATURES
        ).cross_validate(records, labels, rng=np.random.default_rng(60))
        return out

    reports = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    for name, report in reports.items():
        print(f"  {name}: {report}")
    assert reports["full"].accuracy >= reports["aggregation-only"].accuracy
    assert reports["lite"].accuracy > 0.96
    assert reports["robust"].accuracy > 0.95
