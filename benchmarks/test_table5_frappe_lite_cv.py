"""Table 5 — FRAppE Lite cross-validation across class ratios."""

from repro.experiments import table5


def test_table5_frappe_lite_cv(run_experiment, result):
    run_experiment(table5.run, result)
    reports = table5.cv_at_ratios(result)
    for name, cv in reports.items():
        acc, fp, fn = cv.as_percentages()
        assert acc > 96, f"{name}: accuracy {acc}"
        assert fp < 3, f"{name}: FP {fp}"
        assert fn < 12, f"{name}: FN {fn}"
