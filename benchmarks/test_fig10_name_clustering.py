"""Fig 10 — name-similarity clustering per threshold."""

from benchmarks.conftest import percent
from repro.experiments import fig10


def test_fig10_name_clustering(run_experiment, result):
    report = run_experiment(fig10.run, result)
    measured = report.measured_by_metric()
    # malicious apps cluster heavily even at threshold 1.0 ...
    assert percent(measured["malicious @ threshold 1.0"]) < 40
    # ... benign apps barely cluster at all
    assert percent(measured["benign @ threshold 1.0"]) > 90
    assert percent(measured["benign @ threshold 0.7"]) > 60
    # lowering the threshold only merges further
    assert percent(measured["malicious @ threshold 0.7"]) <= (
        percent(measured["malicious @ threshold 1.0"])
    )
