"""Benchmark fixtures: one pipeline at benchmark scale per session.

Each benchmark times the *analysis* that regenerates a paper table or
figure (the shared world is built once, outside timing) and prints the
paper-vs-measured report so a ``--benchmark-only -s`` run reads like
the paper's evaluation section.
"""

from __future__ import annotations

import pytest

from repro.collusion.appnets import CollusionGraph
from repro.core.pipeline import PipelineResult
from repro.experiments import common

BENCH_SCALE = common.BENCH_SCALE
BENCH_SEED = 2012


@pytest.fixture(scope="session")
def result() -> PipelineResult:
    return common.get_result(scale=BENCH_SCALE, seed=BENCH_SEED, sweep=True)


@pytest.fixture(scope="session")
def collusion(result) -> CollusionGraph:
    _result, graph = common.get_collusion(scale=BENCH_SCALE, seed=BENCH_SEED)
    return graph


@pytest.fixture()
def run_experiment(benchmark):
    """Time an experiment once and print its report."""

    def runner(module_run, *args, rounds: int = 1):
        report = benchmark.pedantic(
            module_run, args=args, rounds=rounds, iterations=1
        )
        print()
        print(report.render())
        return report

    return runner


def percent(text: str) -> float:
    """Parse '12.3%' -> 12.3 (helper for shape assertions)."""
    return float(text.rstrip("%"))
