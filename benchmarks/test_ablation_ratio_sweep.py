"""Ablation — class-ratio sensitivity beyond Table 5's grid."""

import numpy as np

from repro.core.frappe import frappe_lite
from repro.experiments.table5 import _cap_ratio


def test_ablation_ratio_sweep(benchmark, result):
    records, labels = result.complete_records()

    def sweep():
        out = {}
        for ratio in (2.0, 7.0, 15.0):
            classifier = frappe_lite(result.extractor)
            out[ratio] = classifier.cross_validate(
                records,
                labels,
                benign_per_malicious=_cap_ratio(labels, ratio),
                rng=np.random.default_rng(55),
            )
        return out

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for ratio, report in reports.items():
        print(f"  ratio {ratio}:1 -> {report}")
        assert report.accuracy > 0.96
    # Imbalance pushes the classifier toward fewer false positives.
    assert (
        reports[15.0].false_positive_rate <= reports[2.0].false_positive_rate + 0.02
    )
